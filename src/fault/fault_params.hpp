// The faults.* parameter fragment of the unified Policy API.
//
// Every registered policy understands the crash-process keys
// (faults.site_rate / faults.site_mttr / faults.seed): all six families
// model the execution plane, so "a site dies and takes its in-flight work
// with it" is meaningful everywhere. The full network-fault keys
// (faults.link_rate / faults.link_mttr / faults.drop / faults.extra_delay)
// exist only on the rtds schema — only the RTDS protocol runs over the
// simulated message transport where lossy links are expressible; the
// baselines keep an idealized reliable control plane (DESIGN.md §9), which
// biases every fault comparison *against* RTDS. PR 7 widens the rtds-only
// set with the adversarial-network keys (faults.dup / faults.reorder /
// faults.reorder_delay / faults.partition_rate / faults.partition_mttr)
// and the hardening switches (faults.retransmit / faults.retransmit_tries),
// see DESIGN.md §12.
#pragma once

#include <vector>

#include "core/workload.hpp"
#include "fault/fault.hpp"
#include "policy/param_map.hpp"

namespace rtds::fault {

/// Adds the crash-process keys every policy shares.
policy::ParamSchema& add_crash_params(policy::ParamSchema& schema);

/// Adds the crash keys plus the network-fault keys (rtds only).
policy::ParamSchema& add_fault_params(policy::ParamSchema& schema);

/// Decodes the faults.* keys into a FaultSpec over [0, horizon). Keys the
/// schema did not declare read as their 0 defaults, so one decoder serves
/// both schema variants.
FaultSpec fault_spec_from(const policy::ParamMap& params, Time horizon);

/// Fault-event generation horizon for a workload: the last deadline — no
/// fault after it can change any outcome.
Time fault_horizon(const std::vector<JobArrival>& arrivals);

}  // namespace rtds::fault
