// Network topology generators for the evaluation benches.
//
// Delays are drawn uniformly from [min_delay, max_delay] except for the
// random geometric graph, whose delays are Euclidean distances (a natural
// "wide network" model where delay ≈ distance). All generators return
// connected graphs.
#pragma once

#include <cstddef>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace rtds {

struct DelayRange {
  Time min_delay = 1.0;
  Time max_delay = 5.0;

  Time sample(Rng& rng) const { return rng.uniform(min_delay, max_delay); }
};

/// n sites in a line (path graph).
Topology make_line(std::size_t n, DelayRange delays, Rng& rng);

/// n sites in a cycle.
Topology make_ring(std::size_t n, DelayRange delays, Rng& rng);

/// Star: site 0 is the hub.
Topology make_star(std::size_t leaves, DelayRange delays, Rng& rng);

/// w×h grid (4-neighbour mesh).
Topology make_grid(std::size_t w, std::size_t h, DelayRange delays, Rng& rng);

/// w×h torus (grid with wraparound).
Topology make_torus(std::size_t w, std::size_t h, DelayRange delays, Rng& rng);

/// d-dimensional hypercube (2^d sites).
Topology make_hypercube(std::size_t dims, DelayRange delays, Rng& rng);

/// Uniform random tree (random attachment).
Topology make_random_tree(std::size_t n, DelayRange delays, Rng& rng);

/// Connected Erdős–Rényi G(n, p): edges kept with probability p, then a
/// random spanning tree is overlaid to guarantee connectivity.
Topology make_erdos_renyi(std::size_t n, double p, DelayRange delays, Rng& rng);

/// Random geometric graph on the unit square: sites within `radius` connect;
/// link delay = Euclidean distance × delay_scale. A spanning tree over
/// nearest neighbours guarantees connectivity.
Topology make_geometric(std::size_t n, double radius, double delay_scale,
                        Rng& rng);

/// Watts–Strogatz small world: ring lattice with k neighbours per side,
/// each edge rewired with probability beta.
Topology make_small_world(std::size_t n, std::size_t k, double beta,
                          DelayRange delays, Rng& rng);

/// Barabási–Albert preferential attachment with m links per new site.
Topology make_scale_free(std::size_t n, std::size_t m, DelayRange delays,
                         Rng& rng);

enum class NetShape {
  kLine,
  kRing,
  kStar,
  kGrid,
  kTorus,
  kHypercube,
  kTree,
  kErdosRenyi,
  kGeometric,
  kSmallWorld,
  kScaleFree,
};

const char* to_string(NetShape shape);
/// Inverse of to_string. Throws ContractViolation listing the valid names.
NetShape net_shape_from_string(const std::string& name);

/// Draws a topology of the given shape with roughly `approx_sites` sites.
Topology make_net(NetShape shape, std::size_t approx_sites, DelayRange delays,
                  Rng& rng);

}  // namespace rtds
