#include "net/topology.hpp"

#include <vector>

namespace rtds {

SiteId Topology::add_site(double computing_power) {
  RTDS_REQUIRE_MSG(computing_power > 0.0,
                   "computing power must be positive, got " << computing_power);
  power_.push_back(computing_power);
  adjacency_.emplace_back();
  return static_cast<SiteId>(power_.size() - 1);
}

void Topology::add_link(SiteId a, SiteId b, Time delay, double throughput) {
  RTDS_REQUIRE(a < site_count());
  RTDS_REQUIRE(b < site_count());
  RTDS_REQUIRE_MSG(a != b, "self-link on site " << a);
  RTDS_REQUIRE_MSG(delay > 0.0, "link delay must be positive, got " << delay);
  RTDS_REQUIRE(throughput >= 0.0);
  RTDS_REQUIRE_MSG(!adjacent(a, b), "parallel link " << a << "--" << b);
  links_.push_back(Link{a, b, delay, throughput});
  adjacency_[a].push_back(Neighbor{b, delay, throughput});
  adjacency_[b].push_back(Neighbor{a, delay, throughput});
}

bool Topology::adjacent(SiteId a, SiteId b) const {
  RTDS_REQUIRE(a < site_count());
  RTDS_REQUIRE(b < site_count());
  for (const auto& n : adjacency_[a])
    if (n.site == b) return true;
  return false;
}

Time Topology::link_delay(SiteId a, SiteId b) const {
  RTDS_REQUIRE(a < site_count());
  for (const auto& n : adjacency_[a])
    if (n.site == b) return n.delay;
  RTDS_REQUIRE_MSG(false, "sites " << a << " and " << b << " not adjacent");
  return 0.0;
}

bool Topology::connected() const {
  if (site_count() == 0) return true;
  std::vector<bool> seen(site_count(), false);
  std::vector<SiteId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const SiteId s = stack.back();
    stack.pop_back();
    for (const auto& n : adjacency_[s]) {
      if (!seen[n.site]) {
        seen[n.site] = true;
        ++visited;
        stack.push_back(n.site);
      }
    }
  }
  return visited == site_count();
}

}  // namespace rtds
