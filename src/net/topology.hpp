// Communication network model (§2): an arbitrary connected graph of sites
// with bidirectional weighted links. Link weights are communication delays
// (propagation); they need not satisfy the triangle inequality. The paper
// assumes faithful loss-less links and faultless sites; the Topology
// object stays immutable once built, and dynamic faults (site crashes,
// link outages — DESIGN.md §9) are layered on top as fault::FaultState
// masks over this static graph.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/time.hpp"

namespace rtds {

/// Dense 0-based site identifier.
using SiteId = std::uint32_t;

inline constexpr SiteId kNoSite = static_cast<SiteId>(-1);

struct Link {
  SiteId a = 0;
  SiteId b = 0;
  Time delay = 0.0;        ///< Propagation delay, > 0.
  double throughput = 0.0; ///< Optional §13 decoration; 0 = ignore volumes.
};

struct Neighbor {
  SiteId site = 0;
  Time delay = 0.0;
  double throughput = 0.0;
};

/// Immutable-after-build weighted undirected graph.
class Topology {
 public:
  Topology() = default;

  /// Adds a site; optional computing power for the §13 "uniform machines"
  /// extension (execution time = cost / power). Power must be positive.
  SiteId add_site(double computing_power = 1.0);

  /// Adds a bidirectional link with positive delay. Parallel links and
  /// self-loops are rejected.
  void add_link(SiteId a, SiteId b, Time delay, double throughput = 0.0);

  std::size_t site_count() const { return power_.size(); }
  std::size_t link_count() const { return links_.size(); }

  double computing_power(SiteId s) const { return power_.at(s); }

  const std::vector<Link>& links() const { return links_; }
  const std::vector<Neighbor>& neighbors(SiteId s) const {
    return adjacency_.at(s);
  }

  bool adjacent(SiteId a, SiteId b) const;

  /// Delay of the direct link a—b; requires adjacency.
  Time link_delay(SiteId a, SiteId b) const;

  /// True if every site can reach every other site.
  bool connected() const;

 private:
  std::vector<double> power_;
  std::vector<Link> links_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace rtds
