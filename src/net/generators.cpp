#include "net/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

namespace rtds {

namespace {
Topology sites(std::size_t n) {
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) topo.add_site();
  return topo;
}
}  // namespace

Topology make_line(std::size_t n, DelayRange delays, Rng& rng) {
  RTDS_REQUIRE(n >= 1);
  Topology topo = sites(n);
  for (SiteId i = 1; i < n; ++i)
    topo.add_link(i - 1, i, delays.sample(rng));
  return topo;
}

Topology make_ring(std::size_t n, DelayRange delays, Rng& rng) {
  RTDS_REQUIRE(n >= 3);
  Topology topo = sites(n);
  for (SiteId i = 0; i < n; ++i)
    topo.add_link(i, static_cast<SiteId>((i + 1) % n), delays.sample(rng));
  return topo;
}

Topology make_star(std::size_t leaves, DelayRange delays, Rng& rng) {
  RTDS_REQUIRE(leaves >= 1);
  Topology topo = sites(leaves + 1);
  for (SiteId i = 1; i <= leaves; ++i)
    topo.add_link(0, i, delays.sample(rng));
  return topo;
}

Topology make_grid(std::size_t w, std::size_t h, DelayRange delays, Rng& rng) {
  RTDS_REQUIRE(w >= 1 && h >= 1);
  Topology topo = sites(w * h);
  auto id = [w](std::size_t r, std::size_t c) {
    return static_cast<SiteId>(r * w + c);
  };
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      if (c + 1 < w) topo.add_link(id(r, c), id(r, c + 1), delays.sample(rng));
      if (r + 1 < h) topo.add_link(id(r, c), id(r + 1, c), delays.sample(rng));
    }
  }
  return topo;
}

Topology make_torus(std::size_t w, std::size_t h, DelayRange delays, Rng& rng) {
  RTDS_REQUIRE(w >= 3 && h >= 3);
  Topology topo = sites(w * h);
  auto id = [w](std::size_t r, std::size_t c) {
    return static_cast<SiteId>(r * w + c);
  };
  for (std::size_t r = 0; r < h; ++r)
    for (std::size_t c = 0; c < w; ++c) {
      topo.add_link(id(r, c), id(r, (c + 1) % w), delays.sample(rng));
      topo.add_link(id(r, c), id((r + 1) % h, c), delays.sample(rng));
    }
  return topo;
}

Topology make_hypercube(std::size_t dims, DelayRange delays, Rng& rng) {
  RTDS_REQUIRE(dims >= 1);
  const std::size_t n = std::size_t{1} << dims;
  Topology topo = sites(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t d = 0; d < dims; ++d) {
      const std::size_t j = i ^ (std::size_t{1} << d);
      if (j > i)
        topo.add_link(static_cast<SiteId>(i), static_cast<SiteId>(j),
                      delays.sample(rng));
    }
  return topo;
}

Topology make_random_tree(std::size_t n, DelayRange delays, Rng& rng) {
  RTDS_REQUIRE(n >= 1);
  Topology topo = sites(n);
  for (SiteId i = 1; i < n; ++i) {
    const auto parent = static_cast<SiteId>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    topo.add_link(parent, i, delays.sample(rng));
  }
  return topo;
}

Topology make_erdos_renyi(std::size_t n, double p, DelayRange delays,
                          Rng& rng) {
  RTDS_REQUIRE(n >= 1);
  RTDS_REQUIRE(p >= 0.0 && p <= 1.0);
  Topology topo = sites(n);
  // Random spanning tree first (random parent attachment over a random
  // permutation) so the graph is connected regardless of p.
  std::vector<SiteId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  for (std::size_t i = 1; i < n; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    topo.add_link(perm[i], perm[j], delays.sample(rng));
  }
  for (SiteId a = 0; a < n; ++a)
    for (SiteId b = a + 1; b < n; ++b)
      if (!topo.adjacent(a, b) && rng.bernoulli(p))
        topo.add_link(a, b, delays.sample(rng));
  return topo;
}

Topology make_geometric(std::size_t n, double radius, double delay_scale,
                        Rng& rng) {
  RTDS_REQUIRE(n >= 1);
  RTDS_REQUIRE(radius > 0.0);
  RTDS_REQUIRE(delay_scale > 0.0);
  Topology topo = sites(n);
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.uniform01(), rng.uniform01()};
  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = pos[a].first - pos[b].first;
    const double dy = pos[a].second - pos[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  for (SiteId a = 0; a < n; ++a)
    for (SiteId b = a + 1; b < n; ++b)
      if (dist(a, b) <= radius)
        topo.add_link(a, b, std::max(kTimeEps * 10, dist(a, b) * delay_scale));
  // Stitch disconnected components together through nearest pairs.
  while (!topo.connected()) {
    // Find components via DFS.
    std::vector<int> comp(n, -1);
    int ncomp = 0;
    for (SiteId s = 0; s < n; ++s) {
      if (comp[s] != -1) continue;
      std::vector<SiteId> stack{s};
      comp[s] = ncomp;
      while (!stack.empty()) {
        const SiteId u = stack.back();
        stack.pop_back();
        for (const auto& nb : topo.neighbors(u))
          if (comp[nb.site] == -1) {
            comp[nb.site] = ncomp;
            stack.push_back(nb.site);
          }
      }
      ++ncomp;
    }
    // Connect component 0 to the nearest site outside it.
    double best = std::numeric_limits<double>::infinity();
    SiteId ba = 0, bb = 0;
    for (SiteId a = 0; a < n; ++a)
      for (SiteId b = 0; b < n; ++b)
        if (comp[a] == 0 && comp[b] != 0 && dist(a, b) < best) {
          best = dist(a, b);
          ba = a;
          bb = b;
        }
    topo.add_link(ba, bb, std::max(kTimeEps * 10, best * delay_scale));
  }
  return topo;
}

Topology make_small_world(std::size_t n, std::size_t k, double beta,
                          DelayRange delays, Rng& rng) {
  RTDS_REQUIRE(n >= 4);
  RTDS_REQUIRE(k >= 1 && 2 * k < n);
  RTDS_REQUIRE(beta >= 0.0 && beta <= 1.0);
  Topology topo = sites(n);
  // Ring lattice edges, each possibly rewired at the far end.
  for (SiteId i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k; ++d) {
      SiteId j = static_cast<SiteId>((i + d) % n);
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform non-self, non-duplicate target.
        for (int attempts = 0; attempts < 32; ++attempts) {
          const auto cand = static_cast<SiteId>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
          if (cand != i && !topo.adjacent(i, cand)) {
            j = cand;
            break;
          }
        }
      }
      if (!topo.adjacent(i, j) && i != j)
        topo.add_link(i, j, delays.sample(rng));
    }
  }
  // Rewiring can in principle disconnect; patch with ring edges.
  for (SiteId i = 0; i < n && !topo.connected(); ++i) {
    const SiteId j = static_cast<SiteId>((i + 1) % n);
    if (!topo.adjacent(i, j)) topo.add_link(i, j, delays.sample(rng));
  }
  return topo;
}

Topology make_scale_free(std::size_t n, std::size_t m, DelayRange delays,
                         Rng& rng) {
  RTDS_REQUIRE(m >= 1);
  RTDS_REQUIRE(n >= m + 1);
  Topology topo = sites(n);
  // Seed clique of m+1 sites.
  std::vector<SiteId> endpoints;  // degree-proportional sampling pool
  for (SiteId a = 0; a <= m; ++a)
    for (SiteId b = a + 1; b <= m; ++b) {
      topo.add_link(a, b, delays.sample(rng));
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  for (SiteId i = static_cast<SiteId>(m + 1); i < n; ++i) {
    std::vector<SiteId> targets;
    while (targets.size() < m) {
      const SiteId cand = endpoints[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(endpoints.size()) - 1))];
      if (cand != i && std::find(targets.begin(), targets.end(), cand) ==
                           targets.end())
        targets.push_back(cand);
    }
    for (SiteId t : targets) {
      topo.add_link(i, t, delays.sample(rng));
      endpoints.push_back(i);
      endpoints.push_back(t);
    }
  }
  return topo;
}

const char* to_string(NetShape shape) {
  switch (shape) {
    case NetShape::kLine: return "line";
    case NetShape::kRing: return "ring";
    case NetShape::kStar: return "star";
    case NetShape::kGrid: return "grid";
    case NetShape::kTorus: return "torus";
    case NetShape::kHypercube: return "hypercube";
    case NetShape::kTree: return "tree";
    case NetShape::kErdosRenyi: return "erdos_renyi";
    case NetShape::kGeometric: return "geometric";
    case NetShape::kSmallWorld: return "small_world";
    case NetShape::kScaleFree: return "scale_free";
  }
  return "?";
}

NetShape net_shape_from_string(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(NetShape::kScaleFree); ++i)
    if (name == to_string(static_cast<NetShape>(i)))
      return static_cast<NetShape>(i);
  std::ostringstream os;
  os << "unknown network shape " << name << "; valid:";
  for (int i = 0; i <= static_cast<int>(NetShape::kScaleFree); ++i)
    os << " " << to_string(static_cast<NetShape>(i));
  throw ContractViolation(os.str());
}

Topology make_net(NetShape shape, std::size_t approx_sites, DelayRange delays,
                  Rng& rng) {
  const std::size_t n = std::max<std::size_t>(4, approx_sites);
  switch (shape) {
    case NetShape::kLine:
      return make_line(n, delays, rng);
    case NetShape::kRing:
      return make_ring(n, delays, rng);
    case NetShape::kStar:
      return make_star(n - 1, delays, rng);
    case NetShape::kGrid: {
      const auto side = std::max<std::size_t>(
          2, static_cast<std::size_t>(std::lround(std::sqrt(double(n)))));
      return make_grid(side, side, delays, rng);
    }
    case NetShape::kTorus: {
      const auto side = std::max<std::size_t>(
          3, static_cast<std::size_t>(std::lround(std::sqrt(double(n)))));
      return make_torus(side, side, delays, rng);
    }
    case NetShape::kHypercube: {
      std::size_t d = 2;
      while ((std::size_t{1} << d) < n) ++d;
      return make_hypercube(d, delays, rng);
    }
    case NetShape::kTree:
      return make_random_tree(n, delays, rng);
    case NetShape::kErdosRenyi:
      return make_erdos_renyi(n, std::min(1.0, 3.0 / double(n)), delays, rng);
    case NetShape::kGeometric:
      return make_geometric(n, std::max(0.1, 1.8 / std::sqrt(double(n))),
                            delays.max_delay, rng);
    case NetShape::kSmallWorld:
      return make_small_world(n, 2, 0.1, delays, rng);
    case NetShape::kScaleFree:
      return make_scale_free(n, 2, delays, rng);
  }
  RTDS_CHECK(false);
  return Topology{};
}

}  // namespace rtds
