// Plain-text serialization of topologies.
//
// Format:
//   net v1
//   sites <n>
//   site <id> <computing_power>
//   links <m>
//   link <a> <b> <delay> <throughput>
//   end
// Strict parsing; malformed input throws with the offending line number.
#pragma once

#include <iosfwd>
#include <string>

#include "net/topology.hpp"

namespace rtds {

void write_topology(const Topology& topo, std::ostream& os);
std::string topology_to_string(const Topology& topo);

Topology read_topology(std::istream& is);
Topology topology_from_string(const std::string& text);

}  // namespace rtds
