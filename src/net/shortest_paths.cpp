#include "net/shortest_paths.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace rtds {

PathResult dijkstra(const Topology& topo, SiteId source) {
  const auto n = topo.site_count();
  RTDS_REQUIRE(source < n);
  PathResult res;
  res.dist.assign(n, kInfiniteTime);
  res.parent.assign(n, kNoSite);
  res.hops.assign(n, kUnreachableHops);
  res.dist[source] = 0.0;
  res.hops[source] = 0;

  using Entry = std::tuple<Time, std::size_t, SiteId>;  // (delay, hops, site)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  pq.emplace(0.0, 0, source);
  std::vector<bool> done(n, false);
  while (!pq.empty()) {
    const auto [d, h, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = true;
    for (const auto& nb : topo.neighbors(u)) {
      const Time nd = d + nb.delay;
      const std::size_t nh = h + 1;
      const bool better =
          nd < res.dist[nb.site] - kTimeEps ||
          (time_eq(nd, res.dist[nb.site]) &&
           (nh < res.hops[nb.site] ||
            (nh == res.hops[nb.site] && u < res.parent[nb.site])));
      if (better) {
        res.dist[nb.site] = nd;
        res.hops[nb.site] = nh;
        res.parent[nb.site] = u;
        pq.emplace(nd, nh, nb.site);
      }
    }
  }
  return res;
}

std::vector<Time> hop_bounded_distances(const Topology& topo, SiteId source,
                                        std::size_t max_hops) {
  const auto n = topo.site_count();
  RTDS_REQUIRE(source < n);
  std::vector<Time> dist(n, kInfiniteTime);
  dist[source] = 0.0;
  std::vector<Time> next = dist;
  for (std::size_t round = 0; round < max_hops; ++round) {
    bool changed = false;
    for (SiteId u = 0; u < n; ++u) {
      if (dist[u] == kInfiniteTime) continue;
      for (const auto& nb : topo.neighbors(u)) {
        if (dist[u] + nb.delay < next[nb.site] - kTimeEps) {
          next[nb.site] = dist[u] + nb.delay;
          changed = true;
        }
      }
    }
    dist = next;
    if (!changed) break;
  }
  return dist;
}

std::vector<std::vector<Time>> floyd_warshall(const Topology& topo) {
  const auto n = topo.site_count();
  std::vector<std::vector<Time>> d(n, std::vector<Time>(n, kInfiniteTime));
  for (SiteId i = 0; i < n; ++i) d[i][i] = 0.0;
  for (const auto& l : topo.links()) {
    d[l.a][l.b] = std::min(d[l.a][l.b], l.delay);
    d[l.b][l.a] = std::min(d[l.b][l.a], l.delay);
  }
  for (SiteId k = 0; k < n; ++k)
    for (SiteId i = 0; i < n; ++i) {
      if (d[i][k] == kInfiniteTime) continue;
      for (SiteId j = 0; j < n; ++j)
        if (d[k][j] != kInfiniteTime && d[i][k] + d[k][j] < d[i][j])
          d[i][j] = d[i][k] + d[k][j];
    }
  return d;
}

std::vector<std::size_t> hop_distances(const Topology& topo, SiteId source) {
  const auto n = topo.site_count();
  RTDS_REQUIRE(source < n);
  std::vector<std::size_t> hops(n, kUnreachableHops);
  std::queue<SiteId> q;
  hops[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const SiteId u = q.front();
    q.pop();
    for (const auto& nb : topo.neighbors(u)) {
      if (hops[nb.site] == kUnreachableHops) {
        hops[nb.site] = hops[u] + 1;
        q.push(nb.site);
      }
    }
  }
  return hops;
}

std::vector<SiteId> extract_path(const PathResult& res, SiteId source,
                                 SiteId target) {
  std::vector<SiteId> path;
  if (target >= res.dist.size() || res.dist[target] == kInfiniteTime)
    return path;
  for (SiteId cur = target; cur != kNoSite; cur = res.parent[cur]) {
    path.push_back(cur);
    if (cur == source) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != source) return {};
  return path;
}

}  // namespace rtds
