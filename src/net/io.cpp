#include "net/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace rtds {

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  RTDS_REQUIRE_MSG(false, "net parse error at line " << line << ": " << what);
  std::abort();  // unreachable
}

}  // namespace

void write_topology(const Topology& topo, std::ostream& os) {
  os << "net v1\n";
  os << "sites " << topo.site_count() << "\n";
  os.precision(17);
  for (SiteId s = 0; s < topo.site_count(); ++s)
    os << "site " << s << ' ' << topo.computing_power(s) << "\n";
  os << "links " << topo.link_count() << "\n";
  for (const auto& l : topo.links())
    os << "link " << l.a << ' ' << l.b << ' ' << l.delay << ' '
       << l.throughput << "\n";
  os << "end\n";
}

std::string topology_to_string(const Topology& topo) {
  std::ostringstream os;
  write_topology(topo, os);
  return os.str();
}

Topology read_topology(std::istream& is) {
  Topology topo;
  std::string line;
  std::size_t lineno = 0;
  auto next_line = [&]() -> std::istringstream {
    while (std::getline(is, line)) {
      ++lineno;
      if (!line.empty() && line[0] != '#') return std::istringstream(line);
    }
    parse_fail(lineno, "unexpected end of input");
  };

  {
    auto ls = next_line();
    std::string word, version;
    ls >> word >> version;
    if (word != "net" || version != "v1")
      parse_fail(lineno, "expected header 'net v1'");
  }
  std::size_t site_count = 0;
  {
    auto ls = next_line();
    std::string word;
    ls >> word >> site_count;
    if (word != "sites" || ls.fail()) parse_fail(lineno, "expected 'sites <n>'");
  }
  for (std::size_t i = 0; i < site_count; ++i) {
    auto ls = next_line();
    std::string word;
    std::size_t id = 0;
    double power = 0.0;
    ls >> word >> id >> power;
    if (word != "site" || ls.fail())
      parse_fail(lineno, "expected 'site <id> <power>'");
    if (id != i) parse_fail(lineno, "site ids must be dense and in order");
    if (power <= 0.0) parse_fail(lineno, "computing power must be positive");
    topo.add_site(power);
  }
  std::size_t link_count = 0;
  {
    auto ls = next_line();
    std::string word;
    ls >> word >> link_count;
    if (word != "links" || ls.fail()) parse_fail(lineno, "expected 'links <m>'");
  }
  for (std::size_t i = 0; i < link_count; ++i) {
    auto ls = next_line();
    std::string word;
    std::size_t a = 0, b = 0;
    double delay = 0.0, throughput = 0.0;
    ls >> word >> a >> b >> delay >> throughput;
    if (word != "link" || ls.fail())
      parse_fail(lineno, "expected 'link <a> <b> <delay> <throughput>'");
    if (a >= site_count || b >= site_count)
      parse_fail(lineno, "link endpoint out of range");
    topo.add_link(static_cast<SiteId>(a), static_cast<SiteId>(b), delay,
                  throughput);
  }
  {
    auto ls = next_line();
    std::string word;
    ls >> word;
    if (word != "end") parse_fail(lineno, "expected 'end'");
  }
  return topo;
}

Topology topology_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_topology(is);
}

}  // namespace rtds
