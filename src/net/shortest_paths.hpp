// Reference (centralized) shortest-path algorithms.
//
// These are the oracles the distributed PCS construction (src/routing) is
// validated against: the paper's interrupted all-pairs algorithm must agree
// with a hop-bounded Bellman–Ford, and the full tables with Dijkstra.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace rtds {

struct PathResult {
  std::vector<Time> dist;       ///< delay distance from the source.
  std::vector<SiteId> parent;   ///< predecessor on a shortest path (kNoSite at source/unreached).
  std::vector<std::size_t> hops;///< hop count of the found shortest-delay path.
};

/// Dijkstra from `source` over link delays. Unreachable sites get
/// kInfiniteTime. Among equal-delay paths prefers fewer hops, then the
/// smaller parent id (tie-break determinism matters for protocol tests).
PathResult dijkstra(const Topology& topo, SiteId source);

/// Shortest delay using at most `max_hops` links (Bellman–Ford truncated to
/// max_hops rounds) — the semantics of the paper's h-phase interruption.
std::vector<Time> hop_bounded_distances(const Topology& topo, SiteId source,
                                        std::size_t max_hops);

/// All-pairs delay matrix via Floyd–Warshall (small n only).
std::vector<std::vector<Time>> floyd_warshall(const Topology& topo);

/// Unweighted hop distance (BFS) from `source`.
std::vector<std::size_t> hop_distances(const Topology& topo, SiteId source);

inline constexpr std::size_t kUnreachableHops = static_cast<std::size_t>(-1);

/// Reconstructs the path source -> target from a PathResult (empty if
/// unreachable).
std::vector<SiteId> extract_path(const PathResult& res, SiteId source,
                                 SiteId target);

}  // namespace rtds
