// Delta-debugging minimizer (DESIGN.md §15): given a failing scenario and
// its failure tag, repeatedly simplifies along every axis — drop fault
// events ddmin-style, zero chaos knobs, shrink the topology / horizon /
// job stream, drop parameter assignments — keeping a candidate only when
// the SAME tag still reproduces. The predicate is run_scenario_checks, so
// whatever the fuzzer saw, the shrinker preserves.
#pragma once

#include <cstddef>
#include <string>

#include "fuzz/scenario.hpp"

namespace rtds::fuzz {

struct ShrinkStats {
  std::size_t attempts = 0;      ///< predicate evaluations spent
  std::size_t improvements = 0;  ///< candidates that kept the failure
};

/// Minimizes `s` while `tag` reproduces; spends at most `max_attempts`
/// predicate runs. Returns the smallest reproducer found (at worst, `s`
/// itself) with `expect` set to the tag — ready to serialize as a .repro.
FuzzScenario shrink_scenario(const FuzzScenario& s, const std::string& tag,
                             std::size_t max_attempts = 200,
                             ShrinkStats* stats = nullptr);

}  // namespace rtds::fuzz
