#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <fstream>
#include <mutex>
#include <ostream>
#include <thread>

#include "fuzz/checks.hpp"
#include "fuzz/generator.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace rtds::fuzz {

namespace {

std::string sanitize_tag(const std::string& tag) {
  std::string out;
  for (const char c : tag)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '-');
  return out;
}

std::string write_repro_file(const std::string& out_dir, std::uint64_t seed,
                             std::uint64_t index, const FuzzScenario& s) {
  const std::string path = out_dir + "/repro-" + std::to_string(seed) + "-" +
                           std::to_string(index) + "-" +
                           sanitize_tag(s.expect) + ".repro";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  RTDS_REQUIRE_MSG(os.good(), "cannot open repro file " << path);
  write_repro(os, s);
  RTDS_REQUIRE_MSG(os.good(), "short write to repro file " << path);
  return path;
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream& log) {
  FatalScope fatal;
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration<double>(
               opts.budget_seconds > 0.0 ? opts.budget_seconds : 0.0);
  std::atomic<std::uint64_t> next_index{0};
  std::atomic<std::uint64_t> done{0};
  std::mutex mu;  // guards findings + log
  std::vector<Finding> findings;

  auto out_of_budget = [&] {
    return opts.budget_seconds > 0.0 &&
           std::chrono::steady_clock::now() >= deadline;
  };

  auto worker = [&] {
    for (;;) {
      const std::uint64_t i = next_index.fetch_add(1);
      if (opts.runs != 0 && i >= opts.runs) return;
      if (out_of_budget()) return;
      FuzzScenario scenario;
      CheckResult r;
      try {
        scenario = generate_scenario(opts.seed, i);
        r = run_scenario_checks(scenario);
      } catch (const std::exception& e) {
        // Harness-level throw (config rejected, generator bug): a finding,
        // not a terminate — fuzz campaigns must survive their own edges.
        r.failed = true;
        r.tag = classify_failure(e.what());
        r.message = e.what();
      }
      const std::uint64_t finished = done.fetch_add(1) + 1;
      if (!r.failed) {
        if (opts.progress_every != 0 && finished % opts.progress_every == 0) {
          std::lock_guard<std::mutex> lk(mu);
          log << "fuzz: " << finished << " scenario(s), "
              << findings.size() << " finding(s)\n";
        }
        continue;
      }
      Finding f;
      f.index = i;
      f.tag = r.tag;
      f.message = r.message;
      f.repro = opts.minimize
                    ? shrink_scenario(scenario, r.tag, opts.shrink_attempts,
                                      &f.shrink)
                    : [&] {
                        FuzzScenario raw = scenario;
                        raw.expect = r.tag;
                        return raw;
                      }();
      if (!opts.out_dir.empty())
        f.repro_path = write_repro_file(opts.out_dir, opts.seed, i, f.repro);
      std::lock_guard<std::mutex> lk(mu);
      log << "fuzz: FINDING scenario " << i << " [" << f.tag << "] "
          << f.message << "\n";
      if (!f.repro_path.empty()) log << "fuzz:   repro " << f.repro_path
                                     << " (size " << f.repro.size() << ")\n";
      findings.push_back(std::move(f));
    }
  };

  const std::size_t jobs = std::max<std::size_t>(1, opts.jobs);
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  FuzzReport report;
  report.runs_done = done.load();
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.index < b.index; });
  report.findings = std::move(findings);
  // Summary counters from the final report only: deterministic under any
  // worker count, unlike per-run counts racing across threads.
  RTDS_COUNT_N("fuzz.runs", report.runs_done);
  RTDS_COUNT_N("fuzz.findings", report.findings.size());
  for (const auto& f : report.findings)
    RTDS_COUNT_N("fuzz.shrink_attempts", f.shrink.attempts);
  return report;
}

}  // namespace rtds::fuzz
