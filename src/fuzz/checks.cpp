#include "fuzz/checks.hpp"

#include <memory>
#include <optional>
#include <sstream>
#include <string_view>

#include "core/rtds_system.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "fault/invariants.hpp"
#include "load/source.hpp"
#include "policy/policy.hpp"
#include "policy/rtds_params.hpp"
#include "routing/apsp.hpp"
#include "snap/snapshot.hpp"
#include "util/error.hpp"

namespace rtds::fuzz {

namespace {

std::string metrics_line(const RunMetrics& m) {
  std::ostringstream os;
  m.to_jsonl(os);
  return os.str();
}

SystemConfig rtds_cfg_for(const FuzzScenario& s, const Topology& topo) {
  policy::register_builtin_policies();
  const auto pol = policy::PolicyRegistry::instance().create("rtds");
  SystemConfig cfg = policy::rtds_system_config_from(pol->parse_params(s.params));
  s.plan.validate(topo);
  cfg.faults = s.plan;
  cfg.check_invariants = true;
  return cfg;
}

/// A lazily pulled diurnal arrival stream bounded by the condition
/// horizon — the open-system workload half of the fuzz space.
std::function<std::optional<JobArrival>()> open_stream(const FuzzScenario& s,
                                                       const Topology& topo) {
  load::ArrivalSpec aspec;
  aspec.kind = load::ArrivalKind::kDiurnal;
  aspec.site_count = topo.site_count();
  aspec.workload = exp::workload_config(s.cond);
  std::shared_ptr<load::ArrivalSource> src = load::make_arrival_source(aspec);
  const Time horizon = s.cond.horizon;
  return [src, horizon]() -> std::optional<JobArrival> {
    auto a = src->next();
    if (!a.has_value() || a->job->release >= horizon) return std::nullopt;
    return a;
  };
}

/// One full rtds reference run. `record_events` must be on for runs that
/// will be snapshotted. Returns the drained system (for the routing /
/// fault-state post-mortems).
std::unique_ptr<RtdsSystem> run_rtds(const FuzzScenario& s,
                                     const Topology& topo,
                                     const std::vector<JobArrival>& arrivals,
                                     bool record_events) {
  SystemConfig cfg = rtds_cfg_for(s, topo);
  cfg.record_events = record_events;
  auto sys = std::make_unique<RtdsSystem>(topo, cfg);
  if (s.workload == WorkloadMode::kOpenDiurnal)
    sys->run_stream(open_stream(s, topo));
  else
    sys->run(arrivals);
  return sys;
}

bool tables_equal(const std::vector<RoutingTable>& a,
                  const std::vector<RoutingTable>& b, std::string* why) {
  if (a.size() != b.size()) {
    *why = "table count differs";
    return false;
  }
  const SiteId n = static_cast<SiteId>(a.size());
  for (SiteId s = 0; s < n; ++s) {
    for (SiteId d = 0; d < n; ++d) {
      const RouteLine* ra = a[s].find(d);
      const RouteLine* rb = b[s].find(d);
      const bool la = ra != nullptr && ra->dist < kInfiniteTime;
      const bool lb = rb != nullptr && rb->dist < kInfiniteTime;
      if (la != lb || (la && (ra->dist != rb->dist ||
                              ra->next_hop != rb->next_hop ||
                              ra->hops != rb->hops))) {
        std::ostringstream os;
        os << "route " << s << " -> " << d << " differs (repaired ";
        if (la)
          os << "dist=" << ra->dist << " via " << ra->next_hop;
        else
          os << "absent";
        os << ", recomputed ";
        if (lb)
          os << "dist=" << rb->dist << " via " << rb->next_hop;
        else
          os << "absent";
        os << ")";
        *why = os.str();
        return false;
      }
    }
  }
  return true;
}

CheckResult fail(std::string tag, std::string message) {
  CheckResult r;
  r.failed = true;
  r.tag = std::move(tag);
  r.message = std::move(message);
  return r;
}

CheckResult run_rtds_checks(const FuzzScenario& s) {
  const Topology topo = exp::make_topology(s.cond);
  std::vector<JobArrival> arrivals;
  if (s.workload != WorkloadMode::kOpenDiurnal)
    arrivals = exp::make_condition(s.cond).arrivals;

  // Reference run under the fatal checker: crashes and invariant
  // violations surface here with a classifiable tag.
  std::unique_ptr<RtdsSystem> ref;
  try {
    ref = run_rtds(s, topo, arrivals, /*record_events=*/false);
  } catch (const std::exception& e) {
    return fail(classify_failure(e.what()), e.what());
  }
  const std::string ref_bytes = metrics_line(ref->metrics());

  // Silent-wrong-answer cross-checks (everything below compares against
  // the reference run; any exception inside them is a finding too).
  try {
    if (s.check_recompute && !s.plan.events.empty()) {
      // The incremental repairs must have left the tables route-for-route
      // identical to a from-scratch recompute over the final fault view.
      const auto h = rtds_cfg_for(s, topo).node.sphere_radius_h;
      const auto oracle = phased_apsp(topo, 2 * h, ref->fault_state());
      std::string why;
      if (!tables_equal(ref->routing_tables(), oracle, &why))
        return fail("repair-divergence", why);
    }

    if (s.check_replay) {
      const auto again = run_rtds(s, topo, arrivals, false);
      const std::string bytes = metrics_line(again->metrics());
      if (bytes != ref_bytes)
        return fail("replay-divergence",
                    "identical scenario produced different metrics bytes");
    }

    if (s.check_snapshot && s.workload != WorkloadMode::kOpenDiurnal) {
      // Uninterrupted run with event recording on (snapshots need the
      // replayable event log), then the same run cut at a scenario-derived
      // event boundary, saved, resumed into a fresh system and drained:
      // the two metric lines must match byte for byte.
      SystemConfig cfg = rtds_cfg_for(s, topo);
      cfg.record_events = true;
      RtdsSystem whole(topo, cfg);
      whole.run(arrivals);
      const std::string whole_bytes = metrics_line(whole.metrics());
      const std::uint64_t total = whole.simulator().executed_events();
      if (total > 1) {
        const std::uint64_t cut =
            1 + (s.cond.seed * 0x9e3779b97f4a7c15ULL >> 32) % (total - 1);
        RtdsSystem part(topo, cfg);
        part.start(arrivals);
        std::size_t left = static_cast<std::size_t>(cut);
        while (left > 0) {
          const std::size_t fired = part.step_events(left);
          if (fired == 0) break;
          left -= fired;
        }
        const std::string blob = snap::Snapshot::save(part);
        RtdsSystem resumed(topo, cfg);
        snap::Snapshot::load(blob, resumed);
        while (resumed.step_events(4096) > 0) {
        }
        resumed.finish();
        if (metrics_line(resumed.metrics()) != whole_bytes)
          return fail("snapshot-divergence",
                      "resume at event " + std::to_string(cut) + "/" +
                          std::to_string(total) +
                          " diverged from the uninterrupted run");
      }
    }

    if (s.check_workers) {
      // The exp aggregation layer must merge this scenario's trials into
      // bit-identical aggregates regardless of worker count.
      exp::ScenarioSpec spec;
      spec.name = "fuzz-worker-check";
      spec.axes = {exp::GridAxis::labeled("case", "case", {"scenario"})};
      spec.metrics = {{"guar", "guarantee_ratio", 6, 1.0},
                      {"arrived", "arrived", 0, 1.0},
                      {"viol", "violations", 0, 1.0}};
      spec.replicates = 2;
      spec.warm_start = false;
      spec.trial = [&](const exp::GridPoint&, std::uint64_t) {
        const auto sys = run_rtds(s, topo, arrivals, false);
        const RunMetrics& m = sys->metrics();
        return exp::TrialResult{m.guarantee_ratio(),
                                static_cast<double>(m.arrived),
                                static_cast<double>(m.invariant_violations)};
      };
      exp::RunOptions serial;
      serial.jobs = 1;
      exp::RunOptions parallel;
      parallel.jobs = 2;
      const auto a = exp::run_scenario(spec, serial);
      const auto b = exp::run_scenario(spec, parallel);
      if (!exp::aggregates_identical(a, b))
        return fail("worker-divergence",
                    "jobs=1 and jobs=2 aggregates are not bit-identical");
    }
  } catch (const std::exception& e) {
    return fail(classify_failure(e.what()), e.what());
  }

  CheckResult ok;
  ok.metrics_jsonl = ref_bytes;
  return ok;
}

CheckResult run_baseline_checks(const FuzzScenario& s) {
  policy::register_builtin_policies();
  const Topology topo = exp::make_topology(s.cond);
  const auto arrivals = exp::make_condition(s.cond).arrivals;
  const auto pol = policy::PolicyRegistry::instance().create(s.policy);
  const auto params = pol->parse_params(s.params);

  RunMetrics ref;
  try {
    ref = pol->run(topo, arrivals, params);
  } catch (const std::exception& e) {
    return fail(classify_failure(e.what()), e.what());
  }
  const std::uint64_t decided =
      ref.accepted_local + ref.accepted_remote + ref.rejected;
  if (decided != ref.arrived)
    return fail("job-conservation",
                "baseline decided " + std::to_string(decided) + " of " +
                    std::to_string(ref.arrived) + " arrivals");
  try {
    if (s.check_replay &&
        metrics_line(pol->run(topo, arrivals, params)) != metrics_line(ref))
      return fail("replay-divergence",
                  "identical scenario produced different metrics bytes");
  } catch (const std::exception& e) {
    return fail(classify_failure(e.what()), e.what());
  }
  CheckResult ok;
  ok.metrics_jsonl = metrics_line(ref);
  return ok;
}

}  // namespace

std::string classify_failure(const std::string& what) {
  constexpr std::string_view prefix = "invariant violated: ";
  if (what.rfind(prefix, 0) == 0) {
    const auto rest = what.substr(prefix.size());
    const auto colon = rest.find(':');
    return colon == std::string::npos ? rest : rest.substr(0, colon);
  }
  return "exception";
}

CheckResult run_scenario_checks(const FuzzScenario& s) {
  RTDS_REQUIRE_MSG(fault::invariants_fatal(),
                   "fuzz checks need the fatal invariant scope installed");
  CheckResult r = s.policy == "rtds" ? run_rtds_checks(s)
                                     : run_baseline_checks(s);
  if (!s.expect.empty()) {
    // Repro replay: the scenario pins a failure class; reproducing it is
    // success, anything else is a repro failure in its own right.
    if (r.tag == s.expect) {
      r.failed = false;  // the pinned failure reproduced, as a repro should
    } else {
      const std::string got = r.failed ? r.tag : "no failure";
      r.failed = true;
      r.tag = "repro-mismatch";
      r.message = "expected '" + s.expect + "' but observed " + got;
    }
  }
  return r;
}

FatalScope::FatalScope()
    : prev_check_(fault::check_invariants_enabled()),
      prev_fatal_(fault::invariants_fatal()) {
  fault::set_check_invariants(true);
  fault::set_invariants_fatal(true);
}

FatalScope::~FatalScope() {
  fault::set_check_invariants(prev_check_);
  fault::set_invariants_fatal(prev_fatal_);
}

}  // namespace rtds::fuzz
