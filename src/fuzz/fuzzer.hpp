// Campaign driver (DESIGN.md §15): walks the seeded scenario sequence,
// runs each scenario's checks, and on a finding shrinks it and writes a
// versioned .repro file. Worker threads claim scenario indices from one
// atomic counter; because scenario i is a pure function of (seed, i) and
// findings are reported in index order, the findings of a --runs-bounded
// campaign are identical whatever the worker count (pinned by test).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"

namespace rtds::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 42;        ///< campaign key
  std::uint64_t runs = 100;       ///< scenario budget (0 = unbounded)
  double budget_seconds = 0.0;    ///< wall-clock budget (0 = none)
  std::size_t jobs = 1;           ///< worker threads
  bool minimize = true;           ///< shrink findings before reporting
  std::size_t shrink_attempts = 200;
  std::string out_dir;            ///< where .repro files land ("" = none)
  std::uint64_t progress_every = 25;  ///< scenarios between progress lines
};

struct Finding {
  std::uint64_t index = 0;  ///< scenario index within the campaign
  std::string tag;
  std::string message;
  FuzzScenario repro;       ///< shrunk (or raw, with --minimize=false)
  std::string repro_path;   ///< written file, "" when out_dir unset
  ShrinkStats shrink;
};

struct FuzzReport {
  std::uint64_t runs_done = 0;
  std::vector<Finding> findings;  ///< sorted by scenario index
};

/// Runs the campaign. Installs the fatal invariant scope itself; progress
/// and finding lines go to `log`. Obs counters (fuzz.runs, fuzz.findings,
/// fuzz.shrink_attempts) are recorded once from the final report, so an
/// attached obs scope sees worker-count-invariant values.
FuzzReport run_fuzz(const FuzzOptions& opts, std::ostream& log);

}  // namespace rtds::fuzz
