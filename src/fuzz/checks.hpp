// The fuzzer's oracle (DESIGN.md §15): runs one scenario under the fatal
// invariant checker and layers the silent-wrong-answer cross-checks on
// top — replay determinism, snapshot-resume-at-a-random-cut equivalence,
// incremental-repair vs full-recompute routing equality, and worker-count
// invariance of exp aggregates. Pure: the same scenario always yields the
// same CheckResult, which is what makes findings replayable and the
// shrinker's predicate stable.
#pragma once

#include <string>

#include "fuzz/scenario.hpp"

namespace rtds::fuzz {

struct CheckResult {
  bool failed = false;
  /// Failure class: an invariant name ("at-most-one", "seq-monotone",
  /// "repair-consistency", ...), a cross-check tag ("replay-divergence",
  /// "snapshot-divergence", "repair-divergence", "worker-divergence"), or
  /// "exception" for anything else thrown.
  std::string tag;
  std::string message;
  /// The reference run's RunMetrics as one JSONL line (byte-comparable;
  /// the committed benign corpus pins these in CI). Empty when the run
  /// itself failed before producing metrics.
  std::string metrics_jsonl;
};

/// Extracts the failure class from an exception message: the invariant
/// name behind the "invariant violated: " prefix, else "exception".
std::string classify_failure(const std::string& what);

/// Runs the scenario's reference run plus every enabled cross-check.
/// Requires fault::invariants_fatal() — the caller (fuzzer CLI, tests,
/// rtds_cli --repro) installs the fatal scope once around the campaign.
CheckResult run_scenario_checks(const FuzzScenario& s);

/// RAII: force the process-global fatal invariant mode on, restore after.
class FatalScope {
 public:
  FatalScope();
  ~FatalScope();
  FatalScope(const FatalScope&) = delete;
  FatalScope& operator=(const FatalScope&) = delete;

 private:
  bool prev_check_, prev_fatal_;
};

}  // namespace rtds::fuzz
