#include "fuzz/scenario.hpp"

#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace rtds::fuzz {

namespace {

constexpr int kReproVersion = 1;

const char* to_string(ArrivalProcess p) {
  return p == ArrivalProcess::kBursty ? "bursty" : "poisson";
}

const char* to_string(DeadlineModel m) {
  return m == DeadlineModel::kTotalWork ? "total_work" : "critical_path";
}

fault::FaultKind fault_kind_from_string(const std::string& name, int line) {
  for (const auto kind :
       {fault::FaultKind::kSiteDown, fault::FaultKind::kSiteUp,
        fault::FaultKind::kLinkDown, fault::FaultKind::kLinkUp,
        fault::FaultKind::kPartition, fault::FaultKind::kHeal})
    if (name == fault::to_string(kind)) return kind;
  throw ContractViolation("repro line " + std::to_string(line) +
                          ": unknown fault kind '" + name + "'");
}

[[noreturn]] void bad_line(int line, const std::string& what) {
  throw ContractViolation("repro line " + std::to_string(line) + ": " + what);
}

}  // namespace

const char* to_string(WorkloadMode mode) {
  switch (mode) {
    case WorkloadMode::kClosed: return "closed";
    case WorkloadMode::kBursty: return "bursty";
    case WorkloadMode::kOpenDiurnal: return "open_diurnal";
  }
  return "closed";
}

WorkloadMode workload_mode_from_string(const std::string& name) {
  if (name == "closed") return WorkloadMode::kClosed;
  if (name == "bursty") return WorkloadMode::kBursty;
  if (name == "open_diurnal") return WorkloadMode::kOpenDiurnal;
  throw ContractViolation("unknown workload mode '" + name +
                          "' (closed|bursty|open_diurnal)");
}

void write_repro(std::ostream& os, const FuzzScenario& s) {
  os << std::setprecision(17);
  os << "RTDSREPRO " << kReproVersion << "\n";
  os << "policy " << s.policy << "\n";
  os << "workload " << to_string(s.workload) << "\n";
  os << "net " << rtds::to_string(s.cond.net) << " " << s.cond.sites << "\n";
  os << "delay " << s.cond.delay_min << " " << s.cond.delay_max << "\n";
  os << "arrivals " << s.cond.rate << " " << s.cond.horizon << "\n";
  os << "laxity " << s.cond.laxity_min << " " << s.cond.laxity_max << "\n";
  os << "tasks " << s.cond.min_tasks << " " << s.cond.max_tasks << "\n";
  os << "process " << to_string(s.cond.process) << " " << s.cond.burst_on_mean
     << " " << s.cond.burst_off_mean << " " << s.cond.burst_multiplier << "\n";
  os << "deadline " << to_string(s.cond.deadline_model) << "\n";
  os << "seed " << s.cond.seed << "\n";
  for (const auto& p : s.params) os << "param " << p << "\n";
  os << "chaos " << s.plan.drop_prob << " " << s.plan.extra_delay_max << " "
     << s.plan.dup_prob << " " << s.plan.reorder_prob << " "
     << s.plan.reorder_delay_max << " " << s.plan.seed << "\n";
  for (const auto& ev : s.plan.events) {
    os << "event " << ev.at << " " << fault::to_string(ev.kind) << " " << ev.a;
    if (ev.b != kNoSite) os << " " << ev.b;
    os << "\n";
  }
  os << "checks " << (s.check_replay ? 1 : 0) << " "
     << (s.check_snapshot ? 1 : 0) << " " << (s.check_recompute ? 1 : 0)
     << " " << (s.check_workers ? 1 : 0) << "\n";
  os << "expect " << (s.expect.empty() ? "-" : s.expect) << "\n";
  os << "end\n";
}

std::string to_repro(const FuzzScenario& s) {
  std::ostringstream os;
  write_repro(os, s);
  return os.str();
}

FuzzScenario from_repro(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  FuzzScenario s;
  s.params.clear();
  bool got_header = false, got_end = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto need = [&](auto&... field) {
      (ls >> ... >> field);
      if (ls.fail()) bad_line(lineno, "malformed '" + key + "' record");
    };
    if (!got_header) {
      int version = 0;
      if (key != "RTDSREPRO") bad_line(lineno, "missing RTDSREPRO header");
      need(version);
      if (version != kReproVersion)
        bad_line(lineno, "unsupported repro version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kReproVersion) + ")");
      got_header = true;
      continue;
    }
    if (key == "policy") {
      need(s.policy);
    } else if (key == "workload") {
      std::string mode;
      need(mode);
      s.workload = workload_mode_from_string(mode);
    } else if (key == "net") {
      std::string shape;
      need(shape, s.cond.sites);
      s.cond.net = net_shape_from_string(shape);
    } else if (key == "delay") {
      need(s.cond.delay_min, s.cond.delay_max);
    } else if (key == "arrivals") {
      need(s.cond.rate, s.cond.horizon);
    } else if (key == "laxity") {
      need(s.cond.laxity_min, s.cond.laxity_max);
    } else if (key == "tasks") {
      need(s.cond.min_tasks, s.cond.max_tasks);
    } else if (key == "process") {
      std::string p;
      need(p, s.cond.burst_on_mean, s.cond.burst_off_mean,
           s.cond.burst_multiplier);
      if (p == "poisson")
        s.cond.process = ArrivalProcess::kPoisson;
      else if (p == "bursty")
        s.cond.process = ArrivalProcess::kBursty;
      else
        bad_line(lineno, "unknown process '" + p + "'");
    } else if (key == "deadline") {
      std::string m;
      need(m);
      if (m == "critical_path")
        s.cond.deadline_model = DeadlineModel::kCriticalPath;
      else if (m == "total_work")
        s.cond.deadline_model = DeadlineModel::kTotalWork;
      else
        bad_line(lineno, "unknown deadline model '" + m + "'");
    } else if (key == "seed") {
      need(s.cond.seed);
    } else if (key == "param") {
      std::string p;
      need(p);
      if (p.find('=') == std::string::npos)
        bad_line(lineno, "param needs key=value, got '" + p + "'");
      s.params.push_back(p);
    } else if (key == "chaos") {
      need(s.plan.drop_prob, s.plan.extra_delay_max, s.plan.dup_prob,
           s.plan.reorder_prob, s.plan.reorder_delay_max, s.plan.seed);
    } else if (key == "event") {
      fault::FaultEvent ev;
      std::string kind;
      need(ev.at, kind, ev.a);
      ev.kind = fault_kind_from_string(kind, lineno);
      SiteId b = kNoSite;
      if (ls >> b) ev.b = b;
      if (!s.plan.events.empty() && ev.at < s.plan.events.back().at)
        bad_line(lineno, "events must be sorted by time");
      s.plan.events.push_back(ev);
    } else if (key == "checks") {
      int replay = 0, snapshot = 0, recompute = 0, workers = 0;
      need(replay, snapshot, recompute, workers);
      s.check_replay = replay != 0;
      s.check_snapshot = snapshot != 0;
      s.check_recompute = recompute != 0;
      s.check_workers = workers != 0;
    } else if (key == "expect") {
      need(s.expect);
      if (s.expect == "-") s.expect.clear();
    } else if (key == "end") {
      got_end = true;
      // Strict tail: a versioned format must not silently ignore content,
      // or a future-format repro could half-parse as the current one.
      while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line[0] != '#')
          bad_line(lineno, "content after 'end'");
      }
      break;
    } else {
      bad_line(lineno, "unknown record '" + key + "'");
    }
  }
  if (!got_header) throw ContractViolation("repro: missing RTDSREPRO header");
  if (!got_end) throw ContractViolation("repro: missing 'end' record");
  return s;
}

void sanitize_plan(FuzzScenario& s) {
  const Topology topo = exp::make_topology(s.cond);
  const SiteId n = static_cast<SiteId>(topo.site_count());
  auto link_exists = [&](SiteId a, SiteId b) {
    return a < n && b < n && a != b && topo.adjacent(a, b);
  };
  std::vector<fault::FaultEvent> kept;
  kept.reserve(s.plan.events.size());
  bool partition_open = false;
  for (const auto& ev : s.plan.events) {
    switch (ev.kind) {
      case fault::FaultKind::kSiteDown:
      case fault::FaultKind::kSiteUp:
        if (ev.a >= n) continue;
        break;
      case fault::FaultKind::kLinkDown:
      case fault::FaultKind::kLinkUp:
        if (!link_exists(ev.a, ev.b)) continue;
        break;
      case fault::FaultKind::kPartition:
        if (ev.a == 0 || ev.a >= n) continue;
        if (partition_open) continue;  // nested cuts are invalid
        partition_open = true;
        break;
      case fault::FaultKind::kHeal:
        if (!partition_open) continue;
        partition_open = false;
        break;
    }
    kept.push_back(ev);
  }
  s.plan.events = std::move(kept);
}

}  // namespace rtds::fuzz
