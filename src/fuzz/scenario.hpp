// One fuzzable scenario (DESIGN.md §15): an experiment condition × a
// policy × a scripted fault plan × the cross-checks to run on it. The
// value type is what the generator samples, the shrinker minimizes and the
// versioned `.repro` text format round-trips — a finding is replayed by
// feeding the identical scenario back through fuzz::run_scenario_checks
// (rtds_cli --repro=FILE), bit for bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/condition.hpp"
#include "fault/fault.hpp"

namespace rtds::fuzz {

/// Workload family: closed batches via exp::make_condition, or the open
/// src/load diurnal arrival source pulled lazily through run_stream.
enum class WorkloadMode { kClosed, kBursty, kOpenDiurnal };

const char* to_string(WorkloadMode mode);
WorkloadMode workload_mode_from_string(const std::string& name);

struct FuzzScenario {
  /// Condition axes (net shape, size, delays, rate, horizon, laxity,
  /// tasks, seed). `process` is derived from `workload` at materialize
  /// time; the diurnal open stream routes through src/load instead.
  exp::ConditionSpec cond;
  WorkloadMode workload = WorkloadMode::kClosed;
  std::string policy = "rtds";
  /// Extra `key=value` assignments validated against the policy schema
  /// (sphere radius h, retransmit knobs, shed caps, fault perturbations
  /// for the baseline policies, ...).
  std::vector<std::string> params;
  /// Scripted chaos for rtds runs: crash/flap/partition events plus the
  /// drop/dup/reorder/extra-delay perturbation knobs. Baselines take their
  /// faults through `params` (their runs own the system internally).
  fault::FaultPlan plan;
  // Cross-checks to run when the fatal-invariant pass survives.
  bool check_replay = true;
  bool check_snapshot = false;
  bool check_recompute = false;
  bool check_workers = false;
  /// The failure this repro pins ("" while still searching). A replay that
  /// does NOT reproduce the tag is itself a failure of the repro.
  std::string expect;

  /// Shrink-ordering metric: what the minimizer drives down.
  std::size_t size() const {
    return 10 * plan.events.size() + cond.sites + params.size();
  }
};

/// Serializes to the versioned text format (RTDSREPRO v1). Deterministic:
/// the same scenario always yields the same bytes (doubles at 17 digits,
/// so parsing returns the exact same values).
std::string to_repro(const FuzzScenario& s);
void write_repro(std::ostream& os, const FuzzScenario& s);

/// Parses a repro. Throws ContractViolation naming the offending line on
/// malformed input or an unsupported version.
FuzzScenario from_repro(const std::string& text);

/// Drops plan events that no longer reference valid sites/links of the
/// scenario's topology (used after the shrinker changes `cond.sites`).
void sanitize_plan(FuzzScenario& s);

}  // namespace rtds::fuzz
