#include "fuzz/shrink.hpp"

#include <algorithm>

#include "fuzz/checks.hpp"

namespace rtds::fuzz {

namespace {

class Shrinker {
 public:
  Shrinker(FuzzScenario best, std::string tag, std::size_t max_attempts,
           ShrinkStats* stats)
      : best_(std::move(best)),
        tag_(std::move(tag)),
        max_attempts_(max_attempts),
        stats_(stats) {}

  /// True iff the candidate still fails with the same tag; adopts it as
  /// the new best when it does AND it is no larger.
  bool try_candidate(FuzzScenario cand) {
    if (attempts_ >= max_attempts_) return false;
    ++attempts_;
    if (stats_ != nullptr) stats_->attempts = attempts_;
    CheckResult r;
    try {
      r = run_scenario_checks(cand);
    } catch (const std::exception&) {
      return false;  // a broken candidate is never an improvement
    }
    if (!r.failed || r.tag != tag_) return false;
    best_ = std::move(cand);
    if (stats_ != nullptr) ++stats_->improvements;
    return true;
  }

  bool budget_left() const { return attempts_ < max_attempts_; }
  const FuzzScenario& best() const { return best_; }

  /// Classic ddmin over the fault script: try dropping chunks, halving
  /// the granularity until single events survive removal attempts.
  void shrink_events() {
    std::size_t chunk = std::max<std::size_t>(1, best_.plan.events.size() / 2);
    while (chunk >= 1 && budget_left()) {
      bool removed_any = false;
      for (std::size_t start = 0;
           start < best_.plan.events.size() && budget_left();) {
        FuzzScenario cand = best_;
        const auto begin =
            cand.plan.events.begin() + static_cast<std::ptrdiff_t>(start);
        const auto end =
            cand.plan.events.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(start + chunk, cand.plan.events.size()));
        cand.plan.events.erase(begin, end);
        if (try_candidate(std::move(cand)))
          removed_any = true;  // same start now names the next chunk
        else
          start += chunk;
      }
      if (chunk == 1 && !removed_any) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
      if (chunk == 1 && removed_any) continue;
    }
  }

  /// Zero each perturbation knob that is not load-bearing for the failure.
  void shrink_knobs() {
    for (double fault::FaultPlan::*knob :
         {&fault::FaultPlan::drop_prob, &fault::FaultPlan::extra_delay_max,
          &fault::FaultPlan::dup_prob, &fault::FaultPlan::reorder_prob}) {
      if (best_.plan.*knob <= 0.0 || !budget_left()) continue;
      FuzzScenario cand = best_;
      cand.plan.*knob = 0.0;
      try_candidate(std::move(cand));
    }
  }

  /// Shrink the numeric condition axes toward their floors.
  void shrink_condition() {
    for (const std::size_t sites :
         {std::size_t{4}, best_.cond.sites / 2, 3 * best_.cond.sites / 4}) {
      if (sites < 4 || sites >= best_.cond.sites || !budget_left()) continue;
      FuzzScenario cand = best_;
      cand.cond.sites = sites;
      try {
        sanitize_plan(cand);  // drop events the smaller topology invalidates
      } catch (const std::exception&) {
        continue;  // families with a size floor can reject the candidate
      }
      try_candidate(std::move(cand));
    }
    if (best_.cond.horizon > 20.0 && budget_left()) {
      FuzzScenario cand = best_;
      cand.cond.horizon = std::max(10.0, cand.cond.horizon / 2);
      try_candidate(std::move(cand));
    }
    if (best_.cond.rate > 0.008 && budget_left()) {
      FuzzScenario cand = best_;
      cand.cond.rate /= 2;
      try_candidate(std::move(cand));
    }
    if (best_.cond.max_tasks > best_.cond.min_tasks + 1 && budget_left()) {
      FuzzScenario cand = best_;
      cand.cond.max_tasks = cand.cond.min_tasks + 1;
      try_candidate(std::move(cand));
    }
  }

  /// Drop each param assignment (schema defaults take over).
  void shrink_params() {
    for (std::size_t i = 0; i < best_.params.size() && budget_left();) {
      FuzzScenario cand = best_;
      cand.params.erase(cand.params.begin() + static_cast<std::ptrdiff_t>(i));
      if (!try_candidate(std::move(cand))) ++i;
    }
  }

 private:
  FuzzScenario best_;
  std::string tag_;
  std::size_t attempts_ = 0;
  std::size_t max_attempts_;
  ShrinkStats* stats_;
};

}  // namespace

FuzzScenario shrink_scenario(const FuzzScenario& s, const std::string& tag,
                             std::size_t max_attempts, ShrinkStats* stats) {
  FuzzScenario seed = s;
  seed.expect.clear();  // the predicate matches raw tags while shrinking
  Shrinker sh(std::move(seed), tag, max_attempts, stats);
  // Fixpoint loop: each pass can unlock the next (fewer events make a
  // smaller topology viable, and so on). Size strictly decreases on every
  // improvement, so this terminates without a round cap.
  std::size_t before;
  do {
    before = sh.best().size();
    sh.shrink_events();
    sh.shrink_knobs();
    sh.shrink_condition();
    sh.shrink_params();
  } while (sh.best().size() < before && sh.budget_left());
  FuzzScenario out = sh.best();
  out.expect = tag;
  return out;
}

}  // namespace rtds::fuzz
