#include "fuzz/generator.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "policy/policy.hpp"
#include "util/rng.hpp"

namespace rtds::fuzz {

namespace {

std::string kv(const std::string& key, double value) {
  std::ostringstream os;
  os << std::setprecision(17) << key << "=" << value;
  return os.str();
}

std::string kv(const std::string& key, std::uint64_t value) {
  return key + "=" + std::to_string(value);
}

/// Scripted extras drawn from the full chaos vocabulary, layered on top of
/// the generated plan — the mutation half of "scripted FaultPlan mutated
/// from the chaos vocabulary". Times stay inside the horizon; pairs
/// (down/up, partition/heal) are kept well-formed by construction.
void mutate_events(fault::FaultPlan& plan, const Topology& topo,
                   bool allow_partition, Time horizon, Rng& rng) {
  const SiteId n = static_cast<SiteId>(topo.site_count());
  const std::size_t extras = static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t i = 0; i < extras; ++i) {
    const Time at = rng.uniform(0.0, 0.8 * horizon);
    const Time up = at + rng.uniform(1.0, 0.2 * horizon);
    switch (rng.uniform_int(0, 2)) {
      case 0: {  // site flap
        const SiteId a = static_cast<SiteId>(rng.uniform_int(0, n - 1));
        plan.events.push_back({at, fault::FaultKind::kSiteDown, a, kNoSite});
        plan.events.push_back({up, fault::FaultKind::kSiteUp, a, kNoSite});
        break;
      }
      case 1: {  // link flap
        if (topo.link_count() == 0) break;
        const auto& link = topo.links()[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(topo.link_count()) - 1))];
        plan.events.push_back({at, fault::FaultKind::kLinkDown, link.a, link.b});
        plan.events.push_back({up, fault::FaultKind::kLinkUp, link.a, link.b});
        break;
      }
      default: {  // partition + heal (only when the generated plan has none
                  // — overlapping cuts are not part of the model)
        if (!allow_partition || n < 2) break;
        const SiteId cut = static_cast<SiteId>(rng.uniform_int(1, n - 1));
        plan.events.push_back({at, fault::FaultKind::kPartition, cut, kNoSite});
        plan.events.push_back({up, fault::FaultKind::kHeal, 0, kNoSite});
        allow_partition = false;
        break;
      }
    }
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.at < b.at;
                   });
}

}  // namespace

FuzzScenario generate_scenario(std::uint64_t master_seed,
                               std::uint64_t index) {
  // One private stream per (campaign, index): worker-count invariant.
  Rng rng(master_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  FuzzScenario s;

  static const NetShape kShapes[] = {
      NetShape::kGrid,       NetShape::kRing,      NetShape::kLine,
      NetShape::kStar,       NetShape::kTorus,     NetShape::kTree,
      NetShape::kErdosRenyi, NetShape::kGeometric, NetShape::kSmallWorld,
  };
  s.cond.net = kShapes[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(std::size(kShapes)) - 1))];
  s.cond.sites = static_cast<std::size_t>(rng.uniform_int(6, 30));
  s.cond.delay_min = rng.uniform(0.3, 1.0);
  s.cond.delay_max = s.cond.delay_min + rng.uniform(0.3, 1.5);
  s.cond.rate = rng.uniform(0.01, 0.06);
  s.cond.horizon = rng.uniform(30.0, 100.0);
  s.cond.laxity_min = rng.uniform(1.5, 3.0);
  s.cond.laxity_max = s.cond.laxity_min + rng.uniform(1.0, 4.0);
  s.cond.min_tasks = static_cast<std::size_t>(rng.uniform_int(2, 4));
  s.cond.max_tasks = s.cond.min_tasks + static_cast<std::size_t>(
                                            rng.uniform_int(1, 6));
  s.cond.seed = rng.next_u64();
  s.cond.deadline_model = rng.uniform01() < 0.8 ? DeadlineModel::kCriticalPath
                                                : DeadlineModel::kTotalWork;

  const double wl = rng.uniform01();
  s.workload = wl < 0.60   ? WorkloadMode::kClosed
               : wl < 0.85 ? WorkloadMode::kBursty
                           : WorkloadMode::kOpenDiurnal;
  if (s.workload == WorkloadMode::kBursty) {
    s.cond.process = ArrivalProcess::kBursty;
    s.cond.burst_on_mean = rng.uniform(5.0, 20.0);
    s.cond.burst_off_mean = rng.uniform(20.0, 60.0);
    s.cond.burst_multiplier = rng.uniform(2.0, 8.0);
  }

  // Policy: mostly the paper's protocol (it is the one with the scripted
  // chaos plan and the deep cross-checks); sometimes a baseline family.
  policy::register_builtin_policies();
  const bool rtds = rng.uniform01() < 0.75;
  if (rtds) {
    s.policy = "rtds";
    s.params.push_back(kv("h", static_cast<std::uint64_t>(
                                   rng.uniform_int(1, 3))));
    if (rng.uniform01() < 0.25) {
      s.params.push_back(kv("shed.cap", static_cast<std::uint64_t>(
                                            rng.uniform_int(1, 4))));
      static const char* kShed[] = {"drop_newest", "drop_lowest_laxity",
                                    "reject_enroll"};
      s.params.push_back(std::string("shed.policy=") +
                         kShed[rng.uniform_int(0, 2)]);
    }

    // Chaos: a generated background plan from the stochastic processes,
    // then scripted mutations from the full vocabulary on top.
    const Topology topo = exp::make_topology(s.cond);
    fault::FaultSpec spec;
    spec.horizon = s.cond.horizon;
    spec.seed = rng.next_u64();
    if (rng.uniform01() < 0.85) {
      if (rng.uniform01() < 0.7) {
        spec.site_rate = rng.uniform(0.0, 0.012);
        spec.site_mttr = rng.uniform(4.0, 15.0);
      }
      if (rng.uniform01() < 0.6) {
        spec.link_rate = rng.uniform(0.0, 0.012);
        spec.link_mttr = rng.uniform(3.0, 10.0);
      }
      if (rng.uniform01() < 0.3) {
        spec.partition_rate = rng.uniform(0.001, 0.004);
        spec.partition_mttr = rng.uniform(4.0, 10.0);
      }
      if (rng.uniform01() < 0.5) spec.drop_prob = rng.uniform(0.0, 0.05);
      if (rng.uniform01() < 0.5) spec.dup_prob = rng.uniform(0.0, 0.10);
      if (rng.uniform01() < 0.5) {
        spec.reorder_prob = rng.uniform(0.0, 0.20);
        spec.reorder_delay_max = rng.uniform(0.2, 1.0);
      }
      if (rng.uniform01() < 0.4)
        spec.extra_delay_max = rng.uniform(0.0, 0.5);
    }
    s.plan = fault::FaultPlan::from_spec(spec, topo);
    mutate_events(s.plan, topo, spec.partition_rate <= 0.0, s.cond.horizon,
                  rng);
    s.plan.validate(topo);
    // Dropped sends without the §12 retransmit layer stall enrollments by
    // design — that is the hardening's job, not a finding. Retransmit also
    // exercises the dedup window against dup/reorder chaos.
    if (s.plan.drop_prob > 0.0 || rng.uniform01() < 0.3) {
      s.params.push_back("faults.retransmit=true");
      s.params.push_back(kv("faults.retransmit_tries",
                            static_cast<std::uint64_t>(rng.uniform_int(2, 4))));
    }

    s.check_replay = true;
    s.check_recompute = !s.plan.events.empty();
    s.check_snapshot =
        s.workload != WorkloadMode::kOpenDiurnal && rng.uniform01() < 0.5;
    s.check_workers = s.workload != WorkloadMode::kOpenDiurnal &&
                      rng.uniform01() < 0.25;
  } else {
    auto names = policy::PolicyRegistry::instance().names();
    names.erase(std::remove(names.begin(), names.end(), "rtds"), names.end());
    std::sort(names.begin(), names.end());
    s.policy = names.empty()
                   ? "rtds"
                   : names[static_cast<std::size_t>(rng.uniform_int(
                         0, static_cast<std::int64_t>(names.size()) - 1))];
    s.workload = s.workload == WorkloadMode::kOpenDiurnal
                     ? WorkloadMode::kClosed
                     : s.workload;  // open streams are an rtds-only path
    if (rng.uniform01() < 0.6) {
      s.params.push_back(kv("faults.site_rate", rng.uniform(0.0, 0.01)));
      s.params.push_back(kv("faults.site_mttr", rng.uniform(4.0, 15.0)));
      // Schema type is int: keep the value inside the parser's range.
      s.params.push_back(kv("faults.seed", static_cast<std::uint64_t>(
                                               rng.next_u64() % 1000000007ULL)));
    }
    s.check_replay = true;
    s.check_snapshot = false;
    s.check_recompute = false;
    s.check_workers = false;
  }
  return s;
}

}  // namespace rtds::fuzz
