// Seeded scenario generator (DESIGN.md §15). Scenario i of a campaign is
// a pure function of (master seed, i) — no shared stream — so a fuzz run
// visits the identical scenario sequence whatever the worker count, and
// any finding names its scenario by index alone.
#pragma once

#include <cstdint>

#include "fuzz/scenario.hpp"

namespace rtds::fuzz {

/// Samples scenario `index` of the campaign keyed by `master_seed`:
/// topology family × size × sphere radius × policy × workload × a
/// scripted fault plan mutated from the full chaos vocabulary. The result
/// always passes FaultPlan::validate against its own topology.
FuzzScenario generate_scenario(std::uint64_t master_seed, std::uint64_t index);

}  // namespace rtds::fuzz
