#include "baseline/broadcast.hpp"

#include <algorithm>

#include "core/messages.hpp"
#include "net/shortest_paths.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rtds {

namespace {

// Message structs (SurplusMsg, FocusedOffer, FocusedReply) live in
// core/messages.hpp as MessageBody alternatives.
enum BroadcastCategory : int {
  kMsgSurplusFlood = 21,
  kMsgFocusedOffer = 22,
  kMsgFocusedReply = 23,
};

class BroadcastDriver {
 public:
  BroadcastDriver(const Topology& topo, const BroadcastConfig& cfg)
      : topo_(topo),
        cfg_(cfg),
        net_(sim_, topo_),
        alive_(topo.site_count(), 1),
        epoch_(topo.site_count(), 0) {
    for (SiteId s = 0; s < topo_.site_count(); ++s) {
      paths_.push_back(dijkstra(topo_, s));
      LocalSchedulerConfig sc = cfg_.sched;
      sc.computing_power = topo_.computing_power(s);
      scheds_.emplace_back(sc);
      net_.set_handler(s, [this, s](SiteId from, const MessageBody& payload) {
        on_message(s, from, payload);
      });
    }
    surplus_table_.assign(topo_.site_count(),
                          std::vector<double>(topo_.site_count(), 1.0));
    // Execution-plane faults (DESIGN.md §9) as ordinary simulator events.
    const fault::SiteTimeline timeline(cfg_.faults, topo_.site_count());
    for (const auto& ev : timeline.events()) {
      sim_.schedule_at(ev.at, [this, ev]() {
        ev.up ? recover(ev.site) : crash(ev.site);
      });
    }
  }

  RunMetrics run(const std::vector<JobArrival>& arrivals) {
    RTDS_REQUIRE(cfg_.broadcast_period > 0.0);
    Time last_arrival = 0.0;
    for (const auto& a : arrivals) {
      last_arrival = std::max(last_arrival, a.job->release);
      sim_.schedule_at(a.job->release,
                       [this, a]() { on_arrival(a.site, a.job); });
    }
    broadcast_until_ = cfg_.stop_with_arrivals ? last_arrival : kInfiniteTime;
    for (SiteId s = 0; s < topo_.site_count(); ++s) schedule_broadcast(s, 0.0);
    sim_.run();
    RTDS_CHECK_MSG(active_.empty(), "unfinished focused-addressing offers");
    for (const auto& [job, track] : accepted_) {
      if (track.failed) {
        ++metrics_.jobs_lost;
        ++metrics_.failed_jobs;
        continue;
      }
      RTDS_CHECK(track.tasks_done == track.tasks_expected);
      metrics_.job_lateness.add(track.completion - track.deadline);
      RTDS_CHECK_MSG(time_le(track.completion, track.deadline),
                     "BCAST baseline missed deadline on job " << job);
    }
    metrics_.transport = net_.stats();
    return metrics_;
  }

 private:
  struct Initiation {
    SiteId initiator = kNoSite;
    std::shared_ptr<const Job> job;
    std::vector<SiteId> candidates;
    std::size_t next_candidate = 0;
    std::size_t attempts = 0;
    std::size_t contacted = 0;
  };

  struct JobTrack {
    SiteId site = kNoSite;  ///< whole-DAG baselines commit on one site
    std::size_t tasks_expected = 0;
    std::size_t tasks_done = 0;
    Time completion = 0.0;
    Time deadline = 0.0;
    bool failed = false;  ///< lost to a crash of its site
  };

  void crash(SiteId s) {
    if (!alive_[s]) return;
    alive_[s] = 0;
    ++epoch_[s];  // pending completion events of this life become stale
    LocalSchedulerConfig sc = cfg_.sched;
    sc.computing_power = topo_.computing_power(s);
    scheds_[s] = LocalScheduler(sc);
    for (auto& [job, track] : accepted_)
      if (track.site == s && track.tasks_done < track.tasks_expected)
        track.failed = true;
    for (auto it = active_.begin(); it != active_.end();) {
      if (it->second.initiator == s) {
        decide(s, *it->second.job, JobOutcome::kRejected,
               RejectReason::kSiteDown, it->second.contacted);
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void recover(SiteId s) { alive_[s] = 1; }

  void schedule_broadcast(SiteId s, Time at) {
    if (time_gt(at, broadcast_until_)) return;
    sim_.schedule_at(at, [this, s]() {
      if (!alive_[s]) {
        // A dead site skips this flood but keeps its period ticking.
        schedule_broadcast(s, sim_.now() + cfg_.broadcast_period);
        return;
      }
      scheds_[s].garbage_collect(sim_.now());
      const double surplus =
          scheds_[s].plan().surplus(sim_.now(), cfg_.surplus_window);
      surplus_table_[s][s] = surplus;
      // Flood to every other site, shortest-path routed: the O(N) per-site
      // per-period cost the Computing Sphere exists to avoid.
      for (SiteId to = 0; to < topo_.site_count(); ++to) {
        if (to == s) continue;
        net_.send_routed(s, to, paths_[s].dist[to], paths_[s].hops[to],
                         SurplusMsg{surplus}, kMsgSurplusFlood);
      }
      schedule_broadcast(s, sim_.now() + cfg_.broadcast_period);
    });
  }

  void send_job_msg(SiteId from, SiteId to, MessageBody payload, int category,
                    JobId job) {
    job_messages_[job] += paths_[from].hops[to];
    net_.send_routed(from, to, paths_[from].dist[to], paths_[from].hops[to],
                     std::move(payload), category);
  }

  bool try_local(SiteId site, const Job& job) {
    auto& sched = scheds_[site];
    sched.garbage_collect(sim_.now());
    const Time earliest = std::max(sim_.now(), job.release);
    const auto placements = sched.try_accept_dag_local(job, earliest);
    if (!placements) return false;
    auto& track = accepted_[job.id];
    track.site = site;
    track.tasks_expected = job.dag.task_count();
    track.deadline = job.deadline;
    for (const auto& p : *placements) {
      sim_.schedule_at(p.end, [this, id = job.id, end = p.end, site,
                               ep = epoch_[site]]() {
        if (ep != epoch_[site]) return;  // the site crashed; work lost
        auto& tr = accepted_.at(id);
        ++tr.tasks_done;
        tr.completion = std::max(tr.completion, end);
      });
    }
    return true;
  }

  void decide(SiteId initiator, const Job& job, JobOutcome outcome,
              RejectReason reason, std::size_t contacted) {
    JobDecision d;
    d.job = job.id;
    d.initiator = initiator;
    d.outcome = outcome;
    d.reject_reason = reason;
    d.arrival = job.release;
    d.decision_time = sim_.now();
    d.deadline = job.deadline;
    d.task_count = job.dag.task_count();
    d.acs_size = contacted + 1;
    d.link_messages = job_messages_[job.id];
    metrics_.record(d);
  }

  void on_arrival(SiteId site, std::shared_ptr<const Job> job) {
    if (!alive_[site]) {
      decide(site, *job, JobOutcome::kRejected, RejectReason::kSiteDown, 0);
      return;
    }
    if (try_local(site, *job)) {
      decide(site, *job, JobOutcome::kAcceptedLocal, RejectReason::kNone, 0);
      return;
    }
    // Focused addressing from the (stale) global surplus table.
    Initiation init;
    init.initiator = site;
    init.job = job;
    std::vector<std::pair<double, SiteId>> ranked;
    for (SiteId s = 0; s < topo_.site_count(); ++s)
      if (s != site) ranked.emplace_back(surplus_table_[site][s], s);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (const auto& [surplus, s] : ranked) init.candidates.push_back(s);
    if (init.candidates.empty()) {
      decide(site, *job, JobOutcome::kRejected, RejectReason::kNoCandidates, 0);
      return;
    }
    active_[job->id] = std::move(init);
    make_offer(site, job->id);
  }

  void make_offer(SiteId initiator, JobId job) {
    auto& init = active_.at(job);
    if (init.next_candidate >= init.candidates.size() ||
        init.attempts >= cfg_.max_attempts) {
      decide(initiator, *init.job, JobOutcome::kRejected,
             RejectReason::kOffloadRefused, init.contacted);
      active_.erase(job);
      return;
    }
    const SiteId target = init.candidates[init.next_candidate++];
    ++init.attempts;
    ++init.contacted;
    send_job_msg(initiator, target, FocusedOffer{job, init.job},
                 kMsgFocusedOffer, job);
  }

  void on_message(SiteId self, SiteId from, const MessageBody& payload) {
    // Reliable-control-plane idealization (DESIGN.md §9): a dead site's
    // RPC layer refuses offers instantly instead of hanging the caller.
    if (!alive_[self]) {
      if (const auto* offer = std::get_if<FocusedOffer>(&payload)) {
        send_job_msg(self, from, FocusedReply{offer->job, false},
                     kMsgFocusedReply, offer->job);
      }
      return;  // floods and replies addressed to a dead site are lost
    }
    if (const auto* surplus = std::get_if<SurplusMsg>(&payload)) {
      surplus_table_[self][from] = surplus->surplus;
    } else if (const auto* offer = std::get_if<FocusedOffer>(&payload)) {
      const bool ok = try_local(self, *offer->job_data);
      send_job_msg(self, from, FocusedReply{offer->job, ok}, kMsgFocusedReply,
                   offer->job);
    } else if (const auto* reply = std::get_if<FocusedReply>(&payload)) {
      const auto it = active_.find(reply->job);
      if (it == active_.end()) return;  // resolved by a crash+recover cycle
      auto& init = it->second;
      if (reply->accepted) {
        decide(self, *init.job, JobOutcome::kAcceptedRemote,
               RejectReason::kNone, init.contacted);
        active_.erase(reply->job);
      } else {
        make_offer(self, reply->job);
      }
    } else {
      RTDS_CHECK_MSG(false, "unknown broadcast payload");
    }
  }

  const Topology& topo_;
  BroadcastConfig cfg_;
  Simulator sim_;
  SimNetwork net_;
  std::vector<char> alive_;
  std::vector<std::uint64_t> epoch_;
  std::vector<PathResult> paths_;
  std::vector<LocalScheduler> scheds_;
  /// surplus_table_[observer][site] = last surplus heard from `site`.
  std::vector<std::vector<double>> surplus_table_;
  Time broadcast_until_ = 0.0;
  std::map<JobId, Initiation> active_;
  std::map<JobId, JobTrack> accepted_;
  std::map<JobId, std::uint64_t> job_messages_;
  RunMetrics metrics_;
};

}  // namespace

RunMetrics run_broadcast(const Topology& topo,
                         const std::vector<JobArrival>& arrivals,
                         const BroadcastConfig& cfg) {
  BroadcastDriver driver(topo, cfg);
  return driver.run(arrivals);
}

}  // namespace rtds
