// BID and RANDOM baselines: whole-job offloading over the sphere.
//
// BID reconstructs the focused-addressing + bidding family the paper cites
// ([4] Cheng–Stankovic–Ramamritham, [10] Ramamritham et al.): when the
// local test fails, the initiator requests bids (surpluses) from its sphere
// members, then offers the *entire* DAG to the best bidders in turn (up to
// max_attempts); each contacted site runs its own §5 local test and either
// commits or refuses. RANDOM replaces bid collection with a single uniform
// random pick. Neither partitions the DAG across sites — that is exactly
// the capability RTDS adds.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "fault/fault.hpp"
#include "routing/apsp.hpp"
#include "routing/pcs.hpp"
#include "sched/local_scheduler.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace rtds {

enum class OffloadPolicy {
  kBestSurplus,  ///< BID: collect all bids, try best surplus first
  kRandom,       ///< RANDOM: one uniformly random sphere member
};

const char* to_string(OffloadPolicy policy);

struct OffloadConfig {
  std::size_t sphere_radius_h = 2;
  LocalSchedulerConfig sched;
  OffloadPolicy policy = OffloadPolicy::kBestSurplus;
  std::size_t max_attempts = 3;  ///< BID: offers before giving up
  std::uint64_t seed = 7;        ///< RANDOM pick stream
  /// Execution-plane faults (DESIGN.md §9): arrivals at / offers to a dead
  /// site fail, a crash loses the site's unfinished jobs, and the control
  /// plane stays reliable (a dead site's RPC layer reports refusal instead
  /// of hanging the caller). Empty reproduces the faultless run bit for bit.
  fault::FaultPlan faults;
};

/// Event-driven run over the simulated network (message costs and transit
/// times are real, like RTDS's). Fills the common RunMetrics schema.
RunMetrics run_offload(const Topology& topo,
                       const std::vector<JobArrival>& arrivals,
                       const OffloadConfig& cfg);

}  // namespace rtds
