// CENTRAL baseline: an omniscient centralized scheduler — zero-cost global
// knowledge of every site's exact idle intervals and true pairwise delays,
// zero protocol latency. This is the (unrealizable on a wide network)
// upper bound the paper's distributed scheme approximates from below; §1
// argues exactly this kind of centralized control "is inappropriate for
// distributed systems".
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "sched/local_scheduler.hpp"

namespace rtds {

struct CentralizedConfig {
  LocalSchedulerConfig sched;
  /// Restrict candidate sites per job to the arrival site's h-hop sphere so
  /// the comparison against RTDS is like-for-like (kNoLimit = whole net).
  std::size_t sphere_radius_h = kNoRadiusLimit;
  static constexpr std::size_t kNoRadiusLimit = static_cast<std::size_t>(-1);
};

RunMetrics run_centralized(const Topology& topo,
                           const std::vector<JobArrival>& arrivals,
                           const CentralizedConfig& cfg);

}  // namespace rtds
