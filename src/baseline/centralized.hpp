// CENTRAL baseline: an omniscient centralized scheduler — zero-cost global
// knowledge of every site's exact idle intervals and true pairwise delays,
// zero protocol latency. This is the (unrealizable on a wide network)
// upper bound the paper's distributed scheme approximates from below; §1
// argues exactly this kind of centralized control "is inappropriate for
// distributed systems".
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "fault/fault.hpp"
#include "sched/local_scheduler.hpp"

namespace rtds {

struct CentralizedConfig {
  LocalSchedulerConfig sched;
  /// Restrict candidate sites per job to the arrival site's h-hop sphere so
  /// the comparison against RTDS is like-for-like (kNoLimit = whole net).
  std::size_t sphere_radius_h = kNoRadiusLimit;
  static constexpr std::size_t kNoRadiusLimit = static_cast<std::size_t>(-1);
  /// Execution-plane faults (DESIGN.md §9): the omniscient scheduler skips
  /// down sites, and a crash loses the site's unfinished task reservations
  /// (which fails the whole job and frees its reservations elsewhere).
  /// Empty reproduces the faultless run bit for bit.
  fault::FaultPlan faults;
};

RunMetrics run_centralized(const Topology& topo,
                           const std::vector<JobArrival>& arrivals,
                           const CentralizedConfig& cfg);

}  // namespace rtds
