// LOCAL baseline: every site schedules only its own arrivals (§5 test, no
// cooperation). The floor every distributed scheme must beat — the paper's
// motivating comparison ("increase of the number of accepted jobs", §14).
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "fault/fault.hpp"
#include "sched/local_scheduler.hpp"

namespace rtds {

/// Runs the LOCAL baseline. `faults` drives execution-plane faults only
/// (DESIGN.md §9): arrivals at a down site are lost and a crash loses the
/// site's unfinished jobs. An empty plan reproduces the faultless run
/// bit for bit.
RunMetrics run_local_only(const Topology& topo,
                          const std::vector<JobArrival>& arrivals,
                          const LocalSchedulerConfig& sched_cfg,
                          const fault::FaultPlan& faults = {});

}  // namespace rtds
