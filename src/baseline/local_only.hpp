// LOCAL baseline: every site schedules only its own arrivals (§5 test, no
// cooperation). The floor every distributed scheme must beat — the paper's
// motivating comparison ("increase of the number of accepted jobs", §14).
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "sched/local_scheduler.hpp"

namespace rtds {

RunMetrics run_local_only(const Topology& topo,
                          const std::vector<JobArrival>& arrivals,
                          const LocalSchedulerConfig& sched_cfg);

}  // namespace rtds
