#include "baseline/centralized.hpp"

#include <algorithm>
#include <set>

#include "dag/analysis.hpp"
#include "net/shortest_paths.hpp"

namespace rtds {

RunMetrics run_centralized(const Topology& topo,
                           const std::vector<JobArrival>& arrivals,
                           const CentralizedConfig& cfg) {
  const auto n = topo.site_count();
  RunMetrics metrics;

  // Omniscient knowledge: exact all-pairs delays and hop counts.
  std::vector<PathResult> paths;
  paths.reserve(n);
  for (SiteId s = 0; s < n; ++s) paths.push_back(dijkstra(topo, s));

  std::vector<SchedulingPlan> plans(n);

  // Execution-plane faults (DESIGN.md §9). Omniscience extends to the
  // fault state: down sites are never candidates, and a crash instantly
  // fails every job with unfinished work there (freeing its reservations
  // on the other sites). Empty timeline = legacy path, bit for bit.
  const fault::SiteTimeline timeline(cfg.faults, n);
  struct JobRec {
    JobId job = 0;
    Time completion = 0.0;
    Time deadline = 0.0;
    /// (site, last task end on that site) per distinct site used: a crash
    /// loses the job only if that *site* still had unfinished work.
    std::vector<std::pair<SiteId, Time>> site_ends;
  };
  std::vector<JobRec> in_flight;
  std::size_t next_event = 0;
  auto apply_events_until = [&](Time t) {
    const auto& events = timeline.events();
    while (next_event < events.size() && events[next_event].at <= t) {
      const auto& ev = events[next_event++];
      if (ev.up) continue;
      plans[ev.site] = SchedulingPlan{};  // the crash loses the local plan
      for (auto it = in_flight.begin(); it != in_flight.end();) {
        const auto used = std::find_if(
            it->site_ends.begin(), it->site_ends.end(),
            [&](const auto& se) { return se.first == ev.site; });
        if (used != it->site_ends.end() && time_gt(used->second, ev.at)) {
          for (const auto& [s, end] : it->site_ends)
            if (s != ev.site) plans[s].remove_job(it->job);
          ++metrics.jobs_lost;
          ++metrics.failed_jobs;
          it = in_flight.erase(it);
        } else {
          ++it;
        }
      }
    }
  };

  for (const auto& a : arrivals) {
    const Job& job = *a.job;
    const Time now = job.release;
    apply_events_until(now);
    for (auto& p : plans) p.garbage_collect(now);

    // Candidate sites (optionally sphere-limited for fairness vs. RTDS).
    std::vector<SiteId> sites;
    for (SiteId s = 0; s < n; ++s) {
      if (!timeline.up_at(s, now)) continue;
      if (cfg.sphere_radius_h == CentralizedConfig::kNoRadiusLimit ||
          paths[a.site].hops[s] <= cfg.sphere_radius_h)
        sites.push_back(s);
    }
    if (!timeline.up_at(a.site, now)) {
      // The arrival site itself is dead: the job is lost with it.
      JobDecision d;
      d.job = job.id;
      d.initiator = a.site;
      d.outcome = JobOutcome::kRejected;
      d.reject_reason = RejectReason::kSiteDown;
      d.arrival = now;
      d.decision_time = now;
      d.deadline = job.deadline;
      d.task_count = job.dag.task_count();
      d.acs_size = 1;
      metrics.record(d);
      continue;
    }

    // ETF list scheduling with exact idle intervals and true delays.
    const Dag& dag = job.dag;
    const auto& priority = dag.bottom_levels();
    std::vector<std::size_t> missing(dag.task_count());
    std::vector<TaskId> free_list;
    for (TaskId t = 0; t < dag.task_count(); ++t) {
      missing[t] = dag.predecessors(t).size();
      if (missing[t] == 0) free_list.push_back(t);
    }
    std::vector<SchedulingPlan> trial = plans;
    std::vector<Time> finish(dag.task_count(), 0.0);
    std::vector<SiteId> where(dag.task_count(), kNoSite);
    std::vector<Reservation> committed;
    bool ok = true;
    Time completion = now;
    while (!free_list.empty()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < free_list.size(); ++i) {
        const TaskId x = free_list[i], y = free_list[best];
        if (time_gt(priority[x], priority[y]) ||
            (time_eq(priority[x], priority[y]) && x < y))
          best = i;
      }
      const TaskId t = free_list[best];
      free_list.erase(free_list.begin() + static_cast<std::ptrdiff_t>(best));

      SiteId chosen = kNoSite;
      Time chosen_start = 0.0, chosen_finish = kInfiniteTime;
      for (SiteId s : sites) {
        Time est = now;
        for (TaskId q : dag.predecessors(t)) {
          const Time dist =
              where[q] == s ? 0.0 : paths[where[q]].dist[s];
          est = std::max(est, finish[q] + dist);
        }
        const Time duration = dag.cost(t) / topo.computing_power(s);
        const Time start = trial[s].earliest_fit(est, job.deadline, duration);
        if (start == kInfiniteTime) continue;
        if (time_lt(start + duration, chosen_finish)) {
          chosen = s;
          chosen_start = start;
          chosen_finish = start + duration;
        }
      }
      if (chosen == kNoSite) {
        ok = false;
        break;
      }
      const Reservation r{job.id, t, chosen_start, chosen_finish};
      trial[chosen].reserve(r);
      committed.push_back(r);
      where[t] = chosen;
      finish[t] = chosen_finish;
      completion = std::max(completion, chosen_finish);
      for (TaskId s2 : dag.successors(t))
        if (--missing[s2] == 0) free_list.push_back(s2);
    }
    ok = ok && time_le(completion, job.deadline);

    JobDecision d;
    d.job = job.id;
    d.initiator = a.site;
    d.arrival = now;
    d.decision_time = now;
    d.deadline = job.deadline;
    d.task_count = dag.task_count();
    if (ok) {
      plans = std::move(trial);
      std::set<SiteId> used(where.begin(), where.end());
      d.acs_size = used.size();
      d.outcome = (used.size() == 1 && *used.begin() == a.site)
                      ? JobOutcome::kAcceptedLocal
                      : JobOutcome::kAcceptedRemote;
      if (timeline.empty()) {
        metrics.job_lateness.add(completion - job.deadline);
      } else {
        // Survivor lateness is folded in at the end, once crashes are known.
        JobRec rec{job.id, completion, job.deadline, {}};
        for (SiteId s : used) {
          Time site_end = 0.0;
          for (TaskId t2 = 0; t2 < dag.task_count(); ++t2)
            if (where[t2] == s) site_end = std::max(site_end, finish[t2]);
          rec.site_ends.emplace_back(s, site_end);
        }
        in_flight.push_back(std::move(rec));
      }
    } else {
      d.acs_size = sites.size();
      d.outcome = JobOutcome::kRejected;
      d.reject_reason = RejectReason::kOffloadRefused;
    }
    metrics.record(d);
  }
  apply_events_until(kInfiniteTime);  // post-arrival crashes still lose jobs
  for (const JobRec& rec : in_flight) {
    metrics.job_lateness.add(rec.completion - rec.deadline);
    RTDS_CHECK(time_le(rec.completion, rec.deadline));
  }
  return metrics;
}

}  // namespace rtds
