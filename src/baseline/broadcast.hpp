// BCAST baseline: focused addressing driven by *periodic network-wide
// surplus broadcasts* — a reconstruction of the scheme of the paper's
// reference [4] (Cheng–Stankovic–Ramamritham 1986), which the paper
// explicitly criticizes: "Selection of sites is based on the surplus of
// each site that is broadcasted over all the network periodically", hence
// cannot scale to arbitrary wide (unbounded) networks.
//
// Every site periodically sends its surplus to every other site (routed on
// shortest paths, full link-message accounting). A failed local test picks
// the best-surplus site from the (stale) table and offers the whole DAG;
// refusals walk down the table up to max_attempts. Comparing its total
// message budget against RTDS's sphere-bounded budget is experiment E1's
// point; comparing acceptance shows what staleness costs.
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "fault/fault.hpp"
#include "sched/local_scheduler.hpp"

namespace rtds {

struct BroadcastConfig {
  LocalSchedulerConfig sched;
  Time broadcast_period = 25.0;  ///< surplus flood interval per site
  std::size_t max_attempts = 3;  ///< focused-addressing offers per job
  /// Surplus window used in broadcasts (no job context exists at broadcast
  /// time, so a fixed observation window is the only option — exactly the
  /// staleness problem the paper's job-scoped enrollment avoids).
  Time surplus_window = 100.0;
  bool stop_with_arrivals = true;  ///< cease broadcasting after last arrival
  /// Execution-plane faults (DESIGN.md §9): a dead site neither floods nor
  /// accepts, arrivals at it are lost, and a crash loses its unfinished
  /// jobs; the control plane stays reliable. Empty reproduces the
  /// faultless run bit for bit.
  fault::FaultPlan faults;
};

RunMetrics run_broadcast(const Topology& topo,
                         const std::vector<JobArrival>& arrivals,
                         const BroadcastConfig& cfg);

}  // namespace rtds
