#include "baseline/local_only.hpp"

namespace rtds {

RunMetrics run_local_only(const Topology& topo,
                          const std::vector<JobArrival>& arrivals,
                          const LocalSchedulerConfig& sched_cfg) {
  RunMetrics metrics;
  std::vector<LocalScheduler> sites;
  sites.reserve(topo.site_count());
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    LocalSchedulerConfig cfg = sched_cfg;
    cfg.computing_power = topo.computing_power(s);
    sites.emplace_back(cfg);
  }

  // Arrivals are processed in time order; decisions are instantaneous, so a
  // plain loop is equivalent to an event-driven run.
  for (const auto& a : arrivals) {
    RTDS_REQUIRE(a.site < sites.size());
    auto& sched = sites[a.site];
    sched.garbage_collect(a.job->release);
    JobDecision d;
    d.job = a.job->id;
    d.initiator = a.site;
    d.arrival = a.job->release;
    d.decision_time = a.job->release;
    d.deadline = a.job->deadline;
    d.task_count = a.job->dag.task_count();
    d.acs_size = 1;
    if (auto placements = sched.try_accept_dag_local(*a.job, a.job->release)) {
      d.outcome = JobOutcome::kAcceptedLocal;
      Time completion = a.job->release;
      for (const auto& p : *placements) completion = std::max(completion, p.end);
      metrics.job_lateness.add(completion - a.job->deadline);
      RTDS_CHECK(time_le(completion, a.job->deadline));
    } else {
      d.outcome = JobOutcome::kRejected;
      d.reject_reason = RejectReason::kOffloadRefused;
    }
    metrics.record(d);
  }
  return metrics;
}

}  // namespace rtds
