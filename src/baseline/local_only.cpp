#include "baseline/local_only.hpp"

namespace rtds {

RunMetrics run_local_only(const Topology& topo,
                          const std::vector<JobArrival>& arrivals,
                          const LocalSchedulerConfig& sched_cfg,
                          const fault::FaultPlan& faults) {
  RunMetrics metrics;
  std::vector<LocalScheduler> sites;
  sites.reserve(topo.site_count());
  for (SiteId s = 0; s < topo.site_count(); ++s) {
    LocalSchedulerConfig cfg = sched_cfg;
    cfg.computing_power = topo.computing_power(s);
    sites.emplace_back(cfg);
  }

  // Execution-plane faults (DESIGN.md §9): a crash resets the site's plan
  // and loses its unfinished jobs; arrivals at a down site are lost. The
  // timeline is empty in the fault-free case, in which the bookkeeping
  // below is never touched and the legacy path runs bit-identically.
  const fault::SiteTimeline timeline(faults, topo.site_count());
  struct Flight {
    JobId job = 0;
    Time completion = 0.0;
    Time deadline = 0.0;
  };
  std::vector<std::vector<Flight>> flights(topo.site_count());
  std::size_t next_event = 0;
  auto apply_events_until = [&](Time t) {
    const auto& events = timeline.events();
    while (next_event < events.size() && events[next_event].at <= t) {
      const auto& ev = events[next_event++];
      if (ev.up) continue;
      // Crash: lose the plan and every job still executing on the site.
      LocalSchedulerConfig cfg = sched_cfg;
      cfg.computing_power = topo.computing_power(ev.site);
      sites[ev.site] = LocalScheduler(cfg);
      auto& fl = flights[ev.site];
      for (auto it = fl.begin(); it != fl.end();) {
        if (time_gt(it->completion, ev.at)) {
          ++metrics.jobs_lost;
          ++metrics.failed_jobs;
          it = fl.erase(it);
        } else {
          ++it;
        }
      }
    }
  };

  // Arrivals are processed in time order; decisions are instantaneous, so a
  // plain loop is equivalent to an event-driven run.
  for (const auto& a : arrivals) {
    RTDS_REQUIRE(a.site < sites.size());
    apply_events_until(a.job->release);
    JobDecision d;
    d.job = a.job->id;
    d.initiator = a.site;
    d.arrival = a.job->release;
    d.decision_time = a.job->release;
    d.deadline = a.job->deadline;
    d.task_count = a.job->dag.task_count();
    d.acs_size = 1;
    if (!timeline.up_at(a.site, a.job->release)) {
      d.outcome = JobOutcome::kRejected;
      d.reject_reason = RejectReason::kSiteDown;
      metrics.record(d);
      continue;
    }
    auto& sched = sites[a.site];
    sched.garbage_collect(a.job->release);
    if (auto placements = sched.try_accept_dag_local(*a.job, a.job->release)) {
      d.outcome = JobOutcome::kAcceptedLocal;
      Time completion = a.job->release;
      for (const auto& p : *placements) completion = std::max(completion, p.end);
      if (timeline.empty()) {
        metrics.job_lateness.add(completion - a.job->deadline);
        RTDS_CHECK(time_le(completion, a.job->deadline));
      } else {
        // Lateness of fault-run survivors is folded in at the end, once
        // it is known which jobs actually survived.
        flights[a.site].push_back(Flight{a.job->id, completion, a.job->deadline});
      }
    } else {
      d.outcome = JobOutcome::kRejected;
      d.reject_reason = RejectReason::kOffloadRefused;
    }
    metrics.record(d);
  }
  apply_events_until(kInfiniteTime);  // post-arrival crashes still lose jobs
  for (const auto& fl : flights) {
    for (const Flight& f : fl) {
      metrics.job_lateness.add(f.completion - f.deadline);
      RTDS_CHECK(time_le(f.completion, f.deadline));
    }
  }
  return metrics;
}

}  // namespace rtds
