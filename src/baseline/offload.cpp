#include "baseline/offload.hpp"

#include <algorithm>

#include "core/messages.hpp"
#include "sim/simulator.hpp"

namespace rtds {

const char* to_string(OffloadPolicy policy) {
  switch (policy) {
    case OffloadPolicy::kBestSurplus: return "bid";
    case OffloadPolicy::kRandom: return "random";
  }
  return "?";
}

namespace {

// Message structs (BidRequest, BidReply, OfferMsg, OfferReply) live in
// core/messages.hpp as MessageBody alternatives.
enum OffloadCategory : int {
  kMsgBidRequest = 11,
  kMsgBidReply = 12,
  kMsgOffer = 13,
  kMsgOfferReply = 14,
};

/// A dead site's oracle bid: sorts below every real surplus so live
/// members are always offered first.
constexpr double kDeadBid = -1e300;

class OffloadDriver {
 public:
  OffloadDriver(const Topology& topo, const OffloadConfig& cfg)
      : topo_(topo),
        cfg_(cfg),
        net_(sim_, topo_),
        rng_(cfg.seed),
        alive_(topo.site_count(), 1),
        epoch_(topo.site_count(), 0) {
    const auto tables = phased_apsp(topo_, 2 * cfg_.sphere_radius_h);
    for (SiteId s = 0; s < topo_.site_count(); ++s) {
      pcs_.push_back(Pcs::build(tables, s, cfg_.sphere_radius_h));
      LocalSchedulerConfig sc = cfg_.sched;
      sc.computing_power = topo_.computing_power(s);
      scheds_.emplace_back(sc);
      net_.set_handler(s, [this, s](SiteId from, const MessageBody& payload) {
        on_message(s, from, payload);
      });
    }
    // Execution-plane faults (DESIGN.md §9) as ordinary simulator events.
    const fault::SiteTimeline timeline(cfg_.faults, topo_.site_count());
    for (const auto& ev : timeline.events()) {
      sim_.schedule_at(ev.at, [this, ev]() {
        ev.up ? recover(ev.site) : crash(ev.site);
      });
    }
  }

  RunMetrics run(const std::vector<JobArrival>& arrivals) {
    for (const auto& a : arrivals) {
      sim_.schedule_at(a.job->release,
                       [this, a]() { on_arrival(a.site, a.job); });
    }
    sim_.run();
    RTDS_CHECK_MSG(active_.empty(), "unfinished offload negotiations");
    for (const auto& [job, track] : accepted_) {
      if (track.failed) {
        ++metrics_.jobs_lost;
        ++metrics_.failed_jobs;
        continue;
      }
      RTDS_CHECK(track.tasks_done == track.tasks_expected);
      metrics_.job_lateness.add(track.completion - track.deadline);
      RTDS_CHECK_MSG(time_le(track.completion, track.deadline),
                     "offload baseline missed deadline on job " << job);
    }
    metrics_.transport = net_.stats();
    return metrics_;
  }

 private:
  struct Initiation {
    SiteId initiator = kNoSite;
    std::shared_ptr<const Job> job;
    std::size_t bids_expected = 0;
    std::vector<std::pair<double, SiteId>> bids;  ///< (surplus, site)
    std::vector<SiteId> candidates;               ///< offer order
    std::size_t next_candidate = 0;
    std::size_t attempts = 0;
    std::size_t contacted = 0;
  };

  struct JobTrack {
    SiteId site = kNoSite;  ///< whole-DAG baselines commit on one site
    std::size_t tasks_expected = 0;
    std::size_t tasks_done = 0;
    Time completion = 0.0;
    Time deadline = 0.0;
    bool failed = false;  ///< lost to a crash of its site
  };

  void crash(SiteId s) {
    if (!alive_[s]) return;
    alive_[s] = 0;
    ++epoch_[s];  // pending completion events of this life become stale
    LocalSchedulerConfig sc = cfg_.sched;
    sc.computing_power = topo_.computing_power(s);
    scheds_[s] = LocalScheduler(sc);
    for (auto& [job, track] : accepted_)
      if (track.site == s && track.tasks_done < track.tasks_expected)
        track.failed = true;
    // Negotiations this site was driving die with it; their jobs still
    // need decisions.
    for (auto it = active_.begin(); it != active_.end();) {
      if (it->second.initiator == s) {
        decide(s, *it->second.job, JobOutcome::kRejected,
               RejectReason::kSiteDown, it->second.contacted);
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void recover(SiteId s) { alive_[s] = 1; }

  void send(SiteId from, SiteId to, MessageBody payload, int category,
            JobId job) {
    const auto& pcs = pcs_[from];
    const auto hops = pcs.hops(from, to);
    job_messages_[job] += hops;
    net_.send_routed(from, to, pcs.delay(from, to), hops, std::move(payload),
                     category);
  }

  /// Commits a locally feasible DAG at `site`; returns true on success.
  bool try_local(SiteId site, const Job& job) {
    auto& sched = scheds_[site];
    sched.garbage_collect(sim_.now());
    const Time earliest = std::max(sim_.now(), job.release);
    const auto placements = sched.try_accept_dag_local(job, earliest);
    if (!placements) return false;
    auto& track = accepted_[job.id];
    track.site = site;
    track.tasks_expected = job.dag.task_count();
    track.deadline = job.deadline;
    for (const auto& p : *placements) {
      sim_.schedule_at(p.end, [this, id = job.id, end = p.end, site,
                               ep = epoch_[site]]() {
        if (ep != epoch_[site]) return;  // the site crashed; work lost
        auto& tr = accepted_.at(id);
        ++tr.tasks_done;
        tr.completion = std::max(tr.completion, end);
      });
    }
    return true;
  }

  void decide(SiteId initiator, const Job& job, JobOutcome outcome,
              RejectReason reason, std::size_t contacted) {
    JobDecision d;
    d.job = job.id;
    d.initiator = initiator;
    d.outcome = outcome;
    d.reject_reason = reason;
    d.arrival = job.release;
    d.decision_time = sim_.now();
    d.deadline = job.deadline;
    d.task_count = job.dag.task_count();
    d.acs_size = contacted + 1;
    d.link_messages = job_messages_[job.id];
    metrics_.record(d);
  }

  void on_arrival(SiteId site, std::shared_ptr<const Job> job) {
    if (!alive_[site]) {
      decide(site, *job, JobOutcome::kRejected, RejectReason::kSiteDown, 0);
      return;
    }
    if (try_local(site, *job)) {
      decide(site, *job, JobOutcome::kAcceptedLocal, RejectReason::kNone, 0);
      return;
    }
    const auto& pcs = pcs_[site];
    if (pcs.size() <= 1) {
      decide(site, *job, JobOutcome::kRejected, RejectReason::kNoCandidates, 0);
      return;
    }
    Initiation init;
    init.initiator = site;
    init.job = job;
    if (cfg_.policy == OffloadPolicy::kRandom) {
      // One uniformly random sphere member.
      std::vector<SiteId> others;
      for (const auto& m : pcs.members())
        if (m.site != site) others.push_back(m.site);
      const auto pick = others[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(others.size()) - 1))];
      init.candidates.push_back(pick);
      active_[job->id] = std::move(init);
      make_offer(site, job->id);
    } else {
      // BID: collect surpluses from the whole sphere first.
      init.bids_expected = pcs.size() - 1;
      active_[job->id] = std::move(init);
      for (const auto& m : pcs.members())
        if (m.site != site)
          send(site, m.site, BidRequest{job->id}, kMsgBidRequest, job->id);
    }
  }

  void make_offer(SiteId initiator, JobId job) {
    auto& init = active_.at(job);
    if (init.next_candidate >= init.candidates.size() ||
        init.attempts >= cfg_.max_attempts) {
      decide(initiator, *init.job, JobOutcome::kRejected,
             RejectReason::kOffloadRefused, init.contacted);
      active_.erase(job);
      return;
    }
    const SiteId target = init.candidates[init.next_candidate++];
    ++init.attempts;
    ++init.contacted;
    send(initiator, target, OfferMsg{job, init.job}, kMsgOffer, job);
  }

  void on_message(SiteId self, SiteId from, const MessageBody& payload) {
    // Reliable-control-plane idealization (DESIGN.md §9): a dead site's
    // RPC layer reports refusal instantly instead of hanging the caller —
    // the baselines get a perfect failure detector for free, which biases
    // every fault comparison against RTDS (whose detector is a timeout).
    if (!alive_[self]) {
      if (const auto* bid = std::get_if<BidRequest>(&payload)) {
        send(self, from, BidReply{bid->job, kDeadBid}, kMsgBidReply, bid->job);
      } else if (const auto* offer = std::get_if<OfferMsg>(&payload)) {
        send(self, from, OfferReply{offer->job, false}, kMsgOfferReply,
             offer->job);
      }
      // Replies addressed to a dead initiator: its negotiations were
      // already resolved at crash time.
      return;
    }
    if (const auto* bid = std::get_if<BidRequest>(&payload)) {
      scheds_[self].garbage_collect(sim_.now());
      send(self, from, BidReply{bid->job, scheds_[self].surplus(sim_.now())},
           kMsgBidReply, bid->job);
    } else if (const auto* reply = std::get_if<BidReply>(&payload)) {
      const auto it = active_.find(reply->job);
      if (it == active_.end()) return;  // resolved by a crash+recover cycle
      auto& init = it->second;
      init.bids.emplace_back(reply->surplus, from);
      if (init.bids.size() == init.bids_expected) {
        std::sort(init.bids.begin(), init.bids.end(),
                  [](const auto& a, const auto& b) {
                    if (a.first != b.first) return a.first > b.first;
                    return a.second < b.second;
                  });
        for (const auto& [surplus, site] : init.bids)
          init.candidates.push_back(site);
        make_offer(self, reply->job);
      }
    } else if (const auto* offer = std::get_if<OfferMsg>(&payload)) {
      const bool ok = try_local(self, *offer->job_data);
      send(self, from, OfferReply{offer->job, ok}, kMsgOfferReply, offer->job);
    } else if (const auto* oreply = std::get_if<OfferReply>(&payload)) {
      const auto it = active_.find(oreply->job);
      if (it == active_.end()) return;  // resolved by a crash+recover cycle
      auto& init = it->second;
      if (oreply->accepted) {
        decide(self, *init.job, JobOutcome::kAcceptedRemote,
               RejectReason::kNone, init.contacted);
        active_.erase(oreply->job);
      } else {
        make_offer(self, oreply->job);
      }
    } else {
      RTDS_CHECK_MSG(false, "unknown offload payload");
    }
  }

  const Topology& topo_;
  OffloadConfig cfg_;
  Simulator sim_;
  SimNetwork net_;
  Rng rng_;
  std::vector<char> alive_;
  std::vector<std::uint64_t> epoch_;
  std::vector<Pcs> pcs_;
  std::vector<LocalScheduler> scheds_;
  std::map<JobId, Initiation> active_;
  std::map<JobId, JobTrack> accepted_;
  std::map<JobId, std::uint64_t> job_messages_;
  RunMetrics metrics_;
};

}  // namespace

RunMetrics run_offload(const Topology& topo,
                       const std::vector<JobArrival>& arrivals,
                       const OffloadConfig& cfg) {
  OffloadDriver driver(topo, cfg);
  return driver.run(arrivals);
}

}  // namespace rtds
