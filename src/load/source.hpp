// Streaming arrival sources for the open-system traffic engine.
//
// Every scenario E1–E8 measures a *closed* batch: generate_workload
// materializes the whole horizon up front and the run ends when it drains.
// An open-system run (steady-state latency, overload, saturation knees)
// instead consumes an unbounded arrival process lazily: an ArrivalSource
// hands out one JobArrival at a time in non-decreasing release order, so a
// `--duration`-bounded run holds O(sites) generator state — never the full
// horizon.
//
// Determinism: each site's stream owns an independent RNG whose seed is a
// pure function of (workload seed, site) — the exp/seed SplitMix64
// finalizer recipe — so the content of site s's k-th job does not depend
// on how generation interleaves across sites. The merged stream orders
// arrivals by (release, site) and assigns job ids in emission order
// starting at 1; the eager reference path (generate_open_workload) sorts
// fully-materialized per-site streams by the same key, so lazy and eager
// generation are bit-equal (pinned by tests/load_test.cpp).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/workload.hpp"

namespace rtds::snap {
class Writer;  // snap/io.hpp — checkpoint container (DESIGN.md §14)
class Reader;
}  // namespace rtds::snap

namespace rtds::load {

/// Which arrival process drives the open stream. kPoisson/kBursty promote
/// the WorkloadConfig knobs of the same names; kDiurnal adds a repeating
/// piecewise-constant rate curve the closed generator never had; kTrace
/// replays a saved arrival sequence (core/trace_io).
enum class ArrivalKind { kPoisson, kBursty, kDiurnal, kTrace };

const char* to_string(ArrivalKind kind);
ArrivalKind arrival_kind_from_string(const std::string& name);

/// One segment of the kDiurnal rate curve: for `length` time units the
/// Poisson rate is multiplier × arrival_rate_per_site. The curve repeats.
struct DiurnalSegment {
  Time length = 0.0;
  double multiplier = 1.0;
};

/// A 4-phase day: quiet night, morning ramp, busy day, evening shoulder.
/// Mean multiplier 1.0, so the offered load matches the configured rate.
std::vector<DiurnalSegment> default_diurnal_curve();

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  std::size_t site_count = 64;
  /// Rates, burst modulation, DAG shape mix, laxity, deadline model and the
  /// seed all come from the closed generator's config; `horizon` is ignored
  /// (open streams are unbounded — the *consumer* imposes the duration).
  WorkloadConfig workload;
  /// kDiurnal only; empty = default_diurnal_curve().
  std::vector<DiurnalSegment> diurnal;
  /// kTrace only: the replayed arrivals (release-sorted, as read_trace
  /// returns them).
  std::vector<JobArrival> trace;
};

/// Pull interface: next() returns arrivals in non-decreasing release order
/// with unique dense ids from 1, or nullopt once exhausted (generated
/// streams never exhaust; trace streams end with the trace).
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;
  virtual std::optional<JobArrival> next() = 0;

  // --- checkpoint support (snap/, DESIGN.md §14) ---
  // A checkpointed open-system run must capture where the arrival process
  // stands — per-site RNG streams, process phase state, the merge heap's
  // already-generated-but-unemitted jobs — or the resumed stream would
  // re-draw different arrivals. save_state serializes exactly that live
  // state into the writer's current section; load_state restores it into a
  // freshly constructed source built from the *same* ArrivalSpec (static
  // configuration is reconstructed, never stored). The defaults throw
  // ContractViolation: a source that does not implement them fails a
  // checkpoint loudly instead of silently forking the stream.
  virtual void save_state(snap::Writer& w) const;
  virtual void load_state(snap::Reader& r);
};

/// Validates the spec and builds the matching source.
std::unique_ptr<ArrivalSource> make_arrival_source(const ArrivalSpec& spec);

/// Pulls every arrival with release < duration into a vector — the bridge
/// from an open source to the closed Policy API. Only the duration prefix
/// is ever materialized.
std::vector<JobArrival> drain(ArrivalSource& source, Time duration);

/// Eager reference generator: materializes each site's full stream up to
/// `duration`, then sorts by (release, site) and renumbers. A genuinely
/// different merge path from the lazy source, used to pin lazy == eager
/// bit-equality; also the closed-path generator for diurnal workloads
/// (rtds_cli gen-load --process=diurnal).
std::vector<JobArrival> generate_open_workload(const ArrivalSpec& spec,
                                               Time duration);

}  // namespace rtds::load
