#include "load/engine.hpp"

#include "fault/fault_params.hpp"
#include "policy/rtds_params.hpp"

namespace rtds::load {

namespace {
Time g_scenario_duration = 0.0;  // <= 0: no override
}  // namespace

void set_scenario_duration(Time duration) { g_scenario_duration = duration; }

Time scenario_duration(Time fallback) {
  return g_scenario_duration > 0.0 ? g_scenario_duration : fallback;
}

OpenRunResult run_open_rtds(const Topology& topo, ArrivalSource& source,
                            const OpenConfig& ocfg,
                            const policy::ParamMap& params) {
  RTDS_REQUIRE_MSG(ocfg.duration > 0.0, "open-run duration must be > 0");
  SystemConfig cfg = policy::rtds_system_config_from(params);
  cfg.faults = fault::FaultPlan::from_spec(
      fault::fault_spec_from(params, ocfg.duration), topo);
  SteadyStateCollector collector(ocfg.window);
  cfg.on_decision_observed = [&collector](const JobDecision& d) {
    collector.on_decision(d);
  };
  cfg.on_job_completed = [&collector](Time arrival, Time completion) {
    collector.on_completion(arrival, completion);
  };
  // Long runs must not hold a decision per job; the collector has
  // everything the summary needs.
  cfg.retain_decisions = false;
  RtdsSystem system(topo, cfg);
  system.run_stream(
      [&source, duration = ocfg.duration]() -> std::optional<JobArrival> {
        auto a = source.next();
        if (!a.has_value() || a->job->release >= duration) return std::nullopt;
        return a;
      });
  OpenRunResult result;
  result.metrics = system.metrics();
  result.steady = collector.summary(ocfg.knee_factor, ocfg.knee_min_count);
  result.windows = collector.windows();
  return result;
}

RunMetrics run_open_policy(const policy::Policy& pol, const Topology& topo,
                           ArrivalSource& source, Time duration,
                           const policy::ParamMap& params) {
  RTDS_REQUIRE_MSG(duration > 0.0, "open-run duration must be > 0");
  return pol.run(topo, drain(source, duration), params);
}

}  // namespace rtds::load
