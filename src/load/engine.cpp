#include "load/engine.hpp"

#include <limits>

#include "fault/fault_params.hpp"
#include "obs/obs.hpp"
#include "policy/rtds_params.hpp"
#include "snap/snapshot.hpp"

namespace rtds::load {

namespace {
Time g_scenario_duration = 0.0;  // <= 0: no override
}  // namespace

void set_scenario_duration(Time duration) { g_scenario_duration = duration; }

Time scenario_duration(Time fallback) {
  return g_scenario_duration > 0.0 ? g_scenario_duration : fallback;
}

OpenRunResult run_open_rtds(const Topology& topo, ArrivalSource& source,
                            const OpenConfig& ocfg,
                            const policy::ParamMap& params) {
  RTDS_REQUIRE_MSG(ocfg.duration > 0.0, "open-run duration must be > 0");
  SystemConfig cfg = policy::rtds_system_config_from(params);
  cfg.faults = fault::FaultPlan::from_spec(
      fault::fault_spec_from(params, ocfg.duration), topo);
  SteadyStateCollector collector(ocfg.window);
  cfg.on_decision_observed = [&collector](const JobDecision& d) {
    collector.on_decision(d);
  };
  cfg.on_job_completed = [&collector](Time arrival, Time completion) {
    collector.on_completion(arrival, completion);
  };
  // Long runs must not hold a decision per job; the collector has
  // everything the summary needs.
  cfg.retain_decisions = false;
  const bool checkpointing = !ocfg.checkpoint_path.empty();
  // Recording is what makes the pending events serializable; it changes no
  // simulation bytes (tests/snapshot_test.cpp pins recorded == unrecorded).
  if (checkpointing) cfg.record_events = true;
  RtdsSystem system(topo, cfg);
  auto next = [&source,
               duration = ocfg.duration]() -> std::optional<JobArrival> {
    auto a = source.next();
    if (!a.has_value() || a->job->release >= duration) return std::nullopt;
    return a;
  };
  if (!checkpointing) {
    system.run_stream(next);
  } else {
    snap::SnapshotExtras extras;
    if (obs::Context* octx = obs::current(); octx != nullptr)
      extras.metrics = octx->metrics;
    extras.collector = &collector;
    extras.source = &source;
    if (ocfg.resume) {
      // The generator state rides in the snapshot; the pull closure does
      // not, so re-install it before stepping.
      snap::Snapshot::load_file(ocfg.checkpoint_path, system, extras);
      system.set_stream_source(next);
    } else {
      system.start_stream(next);
    }
    const std::size_t chunk =
        ocfg.checkpoint_every > 0
            ? static_cast<std::size_t>(ocfg.checkpoint_every)
            : std::numeric_limits<std::size_t>::max();
    while (true) {
      const std::size_t fired = system.step_events(chunk);
      if (fired == 0) break;
      // A partial chunk means the queue just drained — no point saving.
      if (fired == chunk && ocfg.checkpoint_every > 0)
        snap::Snapshot::save_file(system, ocfg.checkpoint_path, extras);
    }
    system.finish();
  }
  OpenRunResult result;
  result.metrics = system.metrics();
  result.steady = collector.summary(ocfg.knee_factor, ocfg.knee_min_count);
  result.windows = collector.windows();
  return result;
}

RunMetrics run_open_policy(const policy::Policy& pol, const Topology& topo,
                           ArrivalSource& source, Time duration,
                           const policy::ParamMap& params) {
  RTDS_REQUIRE_MSG(duration > 0.0, "open-run duration must be > 0");
  return pol.run(topo, drain(source, duration), params);
}

}  // namespace rtds::load
