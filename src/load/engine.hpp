// Open-system run driver: streams an ArrivalSource into RtdsSystem (lazy,
// bounded memory) or — for the five baseline families, which only speak the
// closed Policy API — drains the duration prefix and runs it as a batch.
#pragma once

#include "core/rtds_system.hpp"
#include "load/source.hpp"
#include "load/window.hpp"
#include "policy/policy.hpp"

namespace rtds::load {

struct OpenConfig {
  Time duration = 600.0;  ///< arrivals with release >= duration are not drawn
  WindowConfig window;
  double knee_factor = 4.0;        ///< p99 divergence multiple (see window.hpp)
  std::uint64_t knee_min_count = 20;  ///< completions a window needs to count

  // --- checkpoint / resume (snap/, DESIGN.md §14) ---
  /// Periodically Snapshot::save_file the full run state (system, arrival
  /// generator, steady-state windows, obs metrics buffer if one is
  /// installed) to this path. Empty = off; turning it on forces
  /// record_events and changes no simulation bytes (pinned by
  /// tests/snapshot_test.cpp).
  std::string checkpoint_path;
  /// Events between checkpoints when checkpoint_path is set (0 = only the
  /// stepping chunk changes, no periodic saves).
  std::uint64_t checkpoint_every = 100'000;
  /// Restore checkpoint_path before stepping instead of starting the
  /// stream from scratch. The source/topology/params must match the saved
  /// run (enforced by the snapshot's config hash).
  bool resume = false;
};

struct OpenRunResult {
  RunMetrics metrics;
  SteadySummary steady;
  std::vector<WindowCell> windows;
};

/// Streams the source into an RtdsSystem built from the rtds ParamMap keys
/// (policy/rtds_params.hpp — same keys as `--policy=rtds`, including
/// shed.* and faults.*). At most one un-fired arrival is held at a time;
/// measurement memory is O(windows), not O(jobs).
OpenRunResult run_open_rtds(const Topology& topo, ArrivalSource& source,
                            const OpenConfig& cfg,
                            const policy::ParamMap& params);

/// Closed-API bridge for the other policy families: materializes only the
/// duration prefix (drain) and runs it as one batch. No windowed summary —
/// those policies have no streaming observer hooks.
RunMetrics run_open_policy(const policy::Policy& pol, const Topology& topo,
                           ArrivalSource& source, Time duration,
                           const policy::ParamMap& params);

/// Process-global duration override for scenario trials (the rtds_exp
/// `--scenario=e9_steady_state --duration=T` path — trial functions are
/// pure data, so the CLI has no per-trial channel; precedent:
/// fault::set_check_invariants). <= 0 clears the override. The parallel
/// sweep and the --verify re-run read it identically, so verification
/// compares like with like.
void set_scenario_duration(Time duration);
/// The override when set, else `fallback` (the scenario's built-in length).
Time scenario_duration(Time fallback);

}  // namespace rtds::load
