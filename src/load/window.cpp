#include "load/window.hpp"

#include <cmath>

#include "util/error.hpp"

namespace rtds::load {

QuantileSketch::QuantileSketch(double relative_error) {
  RTDS_REQUIRE_MSG(relative_error > 0.0 && relative_error < 1.0,
                   "sketch relative_error must be in (0, 1)");
  gamma_ = (1.0 + relative_error) / (1.0 - relative_error);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

void QuantileSketch::add(double x) {
  RTDS_REQUIRE_MSG(!std::isnan(x), "sketch sample must not be NaN");
  ++total_;
  if (x <= kMinValue) {
    ++zero_count_;
    return;
  }
  const auto key =
      static_cast<std::int32_t>(std::ceil(std::log(x) * inv_log_gamma_));
  ++bins_[key];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  RTDS_REQUIRE_MSG(gamma_ == other.gamma_,
                   "cannot merge sketches with different precision");
  total_ += other.total_;
  zero_count_ += other.zero_count_;
  for (const auto& [key, count] : other.bins_) bins_[key] += count;
}

double QuantileSketch::quantile(double q) const {
  RTDS_REQUIRE_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (total_ == 0) return 0.0;
  // Nearest-rank: the smallest bin whose cumulative count covers rank.
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = zero_count_;
  if (rank <= seen) return 0.0;
  for (const auto& [key, count] : bins_) {
    seen += count;
    if (rank <= seen) {
      // Midpoint of (gamma^(key-1), gamma^key]: 2·gamma^key / (gamma + 1).
      return 2.0 * std::pow(gamma_, static_cast<double>(key)) /
             (gamma_ + 1.0);
    }
  }
  // rank <= total_ guarantees the loop matched; keep -Wreturn-type quiet.
  RTDS_CHECK_MSG(false, "sketch rank walk exhausted bins");
  return 0.0;
}

SteadyStateCollector::SteadyStateCollector(WindowConfig cfg) : cfg_(cfg) {
  RTDS_REQUIRE_MSG(cfg_.warmup >= 0.0, "window warmup must be >= 0");
  RTDS_REQUIRE_MSG(cfg_.width > 0.0, "window width must be > 0");
}

WindowCell* SteadyStateCollector::cell_at(Time t) {
  // Exact (not epsilon-tolerant) compare: the boundary assignment only has
  // to be deterministic, and t < warmup guarantees a non-negative index.
  if (t < cfg_.warmup) return nullptr;  // warm-up trim
  const auto index =
      static_cast<std::size_t>(std::floor((t - cfg_.warmup) / cfg_.width));
  while (windows_.size() <= index) {
    windows_.emplace_back(cfg_.sketch_relative_error);
  }
  return &windows_[index];
}

void SteadyStateCollector::on_decision(const JobDecision& d) {
  WindowCell* cell = cell_at(d.decision_time);
  if (cell == nullptr) return;
  ++cell->arrived;
  if (d.outcome == JobOutcome::kRejected) {
    ++cell->rejected;
    if (d.reject_reason == RejectReason::kShed) ++cell->shed;
  } else {
    ++cell->accepted;
  }
}

void SteadyStateCollector::on_completion(Time arrival, Time completion) {
  WindowCell* cell = cell_at(completion);
  if (cell == nullptr) return;
  ++cell->completed;
  const double sojourn = completion - arrival;
  cell->sojourn.add(sojourn);
  cell->sketch.add(sojourn);
}

SteadySummary SteadyStateCollector::summary(double knee_factor,
                                            std::uint64_t knee_min_count) const {
  SteadySummary s;
  QuantileSketch merged(cfg_.sketch_relative_error);
  RunningStat stat;
  double baseline_p99 = 0.0;
  bool have_baseline = false;
  // Ascending window order — the pinned deterministic merge order.
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    const WindowCell& cell = windows_[w];
    merged.merge(cell.sketch);
    stat.merge(cell.sojourn);
    if (cell.completed < knee_min_count) continue;
    const double p99 = cell.sketch.p99();
    if (!have_baseline) {
      if (p99 > 0.0) {
        baseline_p99 = p99;
        have_baseline = true;
      }
    } else if (s.knee_window < 0 && p99 > knee_factor * baseline_p99) {
      s.knee_window = static_cast<std::ptrdiff_t>(w);
    }
  }
  s.completed = merged.count();
  s.sojourn_mean = stat.count() > 0 ? stat.mean() : 0.0;
  s.p50 = merged.p50();
  s.p95 = merged.p95();
  s.p99 = merged.p99();
  return s;
}

}  // namespace rtds::load
