// Steady-state measurement for open-system runs: warm-up trimming,
// tumbling windows, and a mergeable streaming quantile sketch.
//
// A duration-bounded streaming run may complete far more jobs than a
// closed batch, so per-sample storage (util/stats Samples) is off the
// table: the sketch below keeps log-spaced bins (DDSketch-style relative
// error) whose counts are additive, so merging is commutative and
// associative — quantiles are bit-identical regardless of merge order,
// which is what preserves the worker-count invariance contract when
// windows are combined into a run summary (always in ascending window
// order, the pinned deterministic order).
//
// Window semantics: samples with completion time < warmup are discarded
// (warm-up trim); window w covers [warmup + w·width, warmup + (w+1)·width).
// Memory is O(windows + sketch bins), independent of the sample count.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/metrics.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/)
}

namespace rtds::load {

/// Log-binned quantile accumulator with bounded relative error.
/// Bin i holds counts of values in (gamma^(i-1), gamma^i] with
/// gamma = (1+e)/(1-e); quantile() returns the matched bin's geometric-ish
/// midpoint 2·gamma^i/(gamma+1), within e of the true quantile. Values
/// <= kMinValue collapse into a zero bin. Deterministic: same multiset of
/// doubles -> same bins -> same bytes, in any add/merge order.
class QuantileSketch {
 public:
  explicit QuantileSketch(double relative_error = 0.01);

  void add(double x);
  /// Counts add bin-wise; commutative and associative.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return total_; }
  /// q in [0, 1]; nearest-rank over the bins. 0 for an empty sketch.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  /// Live bins (diagnostics / memory accounting).
  std::size_t bin_count() const { return bins_.size(); }

 private:
  static constexpr double kMinValue = 1e-9;  ///< below this -> zero bin
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t total_ = 0;
  std::map<std::int32_t, std::uint64_t> bins_;  // key-ordered: stable walk

  friend struct snap::Access;  // checkpoints restore the bins verbatim
};

struct WindowConfig {
  Time warmup = 100.0;  ///< samples before this are trimmed
  Time width = 50.0;    ///< tumbling-window length
  double sketch_relative_error = 0.01;
};

/// One tumbling window's aggregates.
struct WindowCell {
  std::uint64_t arrived = 0;   ///< decisions recorded in this window
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;  ///< includes sheds
  std::uint64_t shed = 0;      ///< RejectReason::kShed subset of rejected
  std::uint64_t completed = 0; ///< sojourn samples (accepted jobs finishing)
  RunningStat sojourn;         ///< completion - arrival moments
  QuantileSketch sketch;       ///< completion - arrival quantiles

  explicit WindowCell(double relative_error)
      : sketch(relative_error) {}
};

/// Post-warm-up run summary: every window's sketch merged in ascending
/// window order (the pinned deterministic merge order).
struct SteadySummary {
  std::uint64_t completed = 0;
  double sojourn_mean = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  /// First post-warm-up window whose p99 sojourn diverged (see
  /// SteadyStateCollector::summary), -1 when the run never diverged.
  std::ptrdiff_t knee_window = -1;
};

/// Consumes per-job decision and completion events from a streaming run
/// and maintains the tumbling windows. Purely observational: attach via
/// the SystemConfig observers; never changes simulation bytes.
class SteadyStateCollector {
 public:
  explicit SteadyStateCollector(WindowConfig cfg);

  /// Windowed by decision time; pre-warm-up decisions are trimmed.
  void on_decision(const JobDecision& d);
  /// Windowed by completion time; sojourn = completion - arrival.
  /// Pre-warm-up completions are trimmed.
  void on_completion(Time arrival, Time completion);

  const WindowConfig& config() const { return cfg_; }
  const std::vector<WindowCell>& windows() const { return windows_; }

  /// Merged post-warm-up summary plus the saturation knee: the baseline is
  /// the first window with >= knee_min_count completions; the knee is the
  /// first later such window whose p99 sojourn exceeds knee_factor × the
  /// baseline p99 — the point where latency diverges under overload.
  SteadySummary summary(double knee_factor = 4.0,
                        std::uint64_t knee_min_count = 20) const;

 private:
  /// Window for time t, or nullptr when t is inside the warm-up.
  WindowCell* cell_at(Time t);

  WindowConfig cfg_;
  std::vector<WindowCell> windows_;

  friend struct snap::Access;  // checkpoints restore the tumbling windows
};

}  // namespace rtds::load
