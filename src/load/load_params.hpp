// Shared ParamSchema fragment for the workload-process knobs
// (`workload.*`), following the policy/sched_params.hpp idiom: one
// add-to-schema helper plus decode helpers, applied to all six policy
// families so the previously-dead WorkloadConfig fields (bursty arrivals,
// burst shape, total-work deadlines) are reachable from every --set path.
//
// Every default equals the WorkloadConfig default, so an empty map leaves
// the generated workload bit-identical to the legacy path.
#pragma once

#include "core/workload.hpp"
#include "load/source.hpp"
#include "policy/param_map.hpp"

namespace rtds::load {

inline void add_workload_params(policy::ParamSchema& schema) {
  schema
      .add_enum("workload.process", "poisson", {"poisson", "bursty", "diurnal"},
                "arrival process: memoryless, ON/OFF-modulated (MMPP), or the "
                "open-system diurnal rate curve (src/load/)")
      .add_double("workload.burst_on_mean", 50.0,
                  "process=bursty: mean ON (burst) phase duration")
      .add_double("workload.burst_off_mean", 200.0,
                  "process=bursty: mean OFF (quiet) phase duration")
      .add_double("workload.burst_multiplier", 6.0,
                  "process=bursty: ON-phase arrival-rate multiplier")
      .add_enum("workload.deadline", "critical_path",
                {"critical_path", "total_work"},
                "deadline base: parallel or single-site lower bound");
}

/// Which arrival process the workload.* keys select. kDiurnal has no closed
/// generator — closed-batch callers must route it through
/// generate_open_workload or reject it.
inline ArrivalKind arrival_kind_from(const policy::ParamMap& p) {
  switch (p.get_enum("workload.process", 0)) {
    case 1: return ArrivalKind::kBursty;
    case 2: return ArrivalKind::kDiurnal;
    default: return ArrivalKind::kPoisson;
  }
}

/// Decodes the workload.* keys onto `cfg` (kDiurnal maps to kPoisson here:
/// the modulation lives in the ArrivalSpec curve, not in WorkloadConfig).
inline void apply_workload_params(const policy::ParamMap& p,
                                  WorkloadConfig& cfg) {
  cfg.arrival_process = arrival_kind_from(p) == ArrivalKind::kBursty
                            ? ArrivalProcess::kBursty
                            : ArrivalProcess::kPoisson;
  cfg.burst_on_mean = p.get_double("workload.burst_on_mean", cfg.burst_on_mean);
  cfg.burst_off_mean =
      p.get_double("workload.burst_off_mean", cfg.burst_off_mean);
  cfg.burst_multiplier =
      p.get_double("workload.burst_multiplier", cfg.burst_multiplier);
  cfg.deadline_model = static_cast<DeadlineModel>(p.get_enum(
      "workload.deadline", static_cast<std::size_t>(cfg.deadline_model)));
}

}  // namespace rtds::load
