#include "load/source.hpp"

#include <algorithm>
#include <queue>

#include "dag/analysis.hpp"
#include "snap/access.hpp"
#include "snap/io.hpp"

namespace rtds::load {

void ArrivalSource::save_state(snap::Writer&) const {
  RTDS_REQUIRE_MSG(false,
                   "this arrival source is not checkpointable (no save_state)");
}

void ArrivalSource::load_state(snap::Reader& r) {
  r.fail("this arrival source is not checkpointable (no load_state)");
}

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kTrace: return "trace";
  }
  return "?";
}

ArrivalKind arrival_kind_from_string(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  if (name == "trace") return ArrivalKind::kTrace;
  RTDS_REQUIRE_MSG(false, "unknown arrival kind '" << name
                          << "' (poisson|bursty|diurnal|trace)");
}

std::vector<DiurnalSegment> default_diurnal_curve() {
  // Repeating 400-unit "day", mean multiplier exactly 1.0:
  // (150·0.2 + 50·1.0 + 150·1.8 + 50·1.0) / 400 = 1.0.
  return {{150.0, 0.2}, {50.0, 1.0}, {150.0, 1.8}, {50.0, 1.0}};
}

namespace {

/// Stream seed for (workload seed, site): the exp/seed trial_seed recipe,
/// so a site's content is independent of generation interleaving and of
/// every other site's stream.
std::uint64_t site_stream_seed(std::uint64_t seed, SiteId site) {
  return SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL *
                            (static_cast<std::uint64_t>(site) + 1)))
      .next();
}

void validate_spec(const ArrivalSpec& spec) {
  RTDS_REQUIRE(spec.site_count >= 1);
  if (spec.kind == ArrivalKind::kTrace) return;  // content comes from the trace
  const WorkloadConfig& cfg = spec.workload;
  RTDS_REQUIRE(cfg.arrival_rate_per_site > 0.0);
  RTDS_REQUIRE(!cfg.shape_mix.empty());
  RTDS_REQUIRE(cfg.min_tasks >= 1 && cfg.min_tasks <= cfg.max_tasks);
  RTDS_REQUIRE(cfg.laxity_min > 0.0 && cfg.laxity_min <= cfg.laxity_max);
  RTDS_REQUIRE(cfg.data_volume_min >= 0.0);
  RTDS_REQUIRE(cfg.data_volume_min <= cfg.data_volume_max ||
               cfg.data_volume_max == 0.0);
  if (spec.kind == ArrivalKind::kBursty) {
    RTDS_REQUIRE(cfg.burst_on_mean > 0.0 && cfg.burst_off_mean > 0.0);
    RTDS_REQUIRE(cfg.burst_multiplier >= 1.0);
  }
  if (spec.kind == ArrivalKind::kDiurnal) {
    for (const auto& seg : spec.diurnal) {
      RTDS_REQUIRE_MSG(seg.length > 0.0 && seg.multiplier >= 0.0,
                       "diurnal segments need length > 0, multiplier >= 0");
    }
  }
}

/// Rebuilds `dag` with uniform random data volumes on every arc (the same
/// §13 decoration the closed generator applies).
Dag decorate_volumes(const Dag& dag, double lo, double hi, Rng& rng) {
  Dag out;
  for (TaskId t = 0; t < dag.task_count(); ++t)
    out.add_task(dag.cost(t), dag.task(t).label);
  for (const auto& arc : dag.arcs()) out.add_arc(arc.from, arc.to, rng.uniform(lo, hi));
  out.finalize();
  return out;
}

/// One site's generator: owns an independent RNG stream and the arrival
/// process state, and synthesizes jobs in exactly the closed generator's
/// draw order (interarrival, shape, tasks, dag, volumes, laxity).
class SiteStream {
 public:
  SiteStream(const ArrivalSpec& spec, SiteId site)
      : spec_(&spec),
        site_(site),
        rng_(site_stream_seed(spec.workload.seed, site)),
        curve_(spec.kind == ArrivalKind::kDiurnal
                   ? (spec.diurnal.empty() ? default_diurnal_curve()
                                           : spec.diurnal)
                   : std::vector<DiurnalSegment>{}) {
    // Mirror generate_workload: the MMPP starts in the OFF phase with an
    // exponential residual. Only bursty draws it, so the other kinds'
    // streams start at the same RNG position as their first arrival draw.
    if (spec.kind == ArrivalKind::kBursty)
      phase_left_ = rng_.exponential(1.0 / spec.workload.burst_off_mean);
    if (!curve_.empty()) seg_left_ = curve_[0].length;
  }

  SiteId site() const { return site_; }

  /// Checkpoint capture: the RNG words and process-phase state (spec_,
  /// site_ and the resolved curve_ are reconstructed, never stored).
  void save_state(snap::Writer& w) const {
    snap::Access::save(w, rng_);
    w.f64(t_);
    w.b(in_burst_);
    w.f64(phase_left_);
    w.u64(seg_);
    w.f64(seg_left_);
  }
  void load_state(snap::Reader& r) {
    snap::Access::load(r, rng_);
    t_ = r.f64();
    in_burst_ = r.b();
    phase_left_ = r.f64();
    seg_ = static_cast<std::size_t>(r.u64());
    seg_left_ = r.f64();
    if (!curve_.empty() && seg_ >= curve_.size())
      r.fail("diurnal segment index outside the resolved curve");
  }

  /// Generates the next arrival (id 0 — the merger assigns ids in emission
  /// order). Generated streams never end.
  JobArrival generate() {
    const WorkloadConfig& cfg = spec_->workload;
    t_ += next_gap();
    const auto shape = cfg.shape_mix[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(cfg.shape_mix.size()) - 1))];
    const auto tasks = static_cast<std::size_t>(
        rng_.uniform_int(static_cast<std::int64_t>(cfg.min_tasks),
                         static_cast<std::int64_t>(cfg.max_tasks)));
    auto job = std::make_shared<Job>();
    job->id = 0;
    job->dag = make_shape(shape, tasks, cfg.costs, rng_);
    if (cfg.data_volume_max > 0.0)
      job->dag = decorate_volumes(job->dag, cfg.data_volume_min,
                                  cfg.data_volume_max, rng_);
    job->release = t_;
    const double laxity = rng_.uniform(cfg.laxity_min, cfg.laxity_max);
    const Time base = cfg.deadline_model == DeadlineModel::kCriticalPath
                          ? critical_path_length(job->dag)
                          : job->dag.total_work();
    job->deadline = t_ + laxity * base;
    return JobArrival{site_, std::move(job)};
  }

 private:
  /// Next inter-arrival for the configured process. Bursty is the closed
  /// generator's MMPP phase walk; diurnal steps the repeating rate curve
  /// the same way (per-segment exponential draws, thinning-free).
  Time next_gap() {
    const WorkloadConfig& cfg = spec_->workload;
    switch (spec_->kind) {
      case ArrivalKind::kPoisson:
        return rng_.exponential(cfg.arrival_rate_per_site);
      case ArrivalKind::kBursty: {
        Time waited = 0.0;
        for (;;) {
          const double rate =
              in_burst_ ? cfg.arrival_rate_per_site * cfg.burst_multiplier
                        : cfg.arrival_rate_per_site /
                              (1.0 + cfg.burst_multiplier);
          const Time gap = rng_.exponential(rate);
          if (gap <= phase_left_) {
            phase_left_ -= gap;
            return waited + gap;
          }
          waited += phase_left_;
          in_burst_ = !in_burst_;
          phase_left_ = rng_.exponential(
              1.0 / (in_burst_ ? cfg.burst_on_mean : cfg.burst_off_mean));
        }
      }
      case ArrivalKind::kDiurnal: {
        Time waited = 0.0;
        for (;;) {
          const double rate =
              cfg.arrival_rate_per_site * curve_[seg_].multiplier;
          if (rate > 0.0) {
            const Time gap = rng_.exponential(rate);
            if (gap <= seg_left_) {
              seg_left_ -= gap;
              return waited + gap;
            }
          }
          waited += seg_left_;
          seg_ = (seg_ + 1) % curve_.size();
          seg_left_ = curve_[seg_].length;
        }
      }
      case ArrivalKind::kTrace: break;  // trace streams never reach here
    }
    RTDS_CHECK_MSG(false, "unreachable arrival kind");
  }

  const ArrivalSpec* spec_;
  SiteId site_;
  Rng rng_;
  Time t_ = 0.0;
  bool in_burst_ = false;   // bursty phase state
  Time phase_left_ = 0.0;
  std::vector<DiurnalSegment> curve_;  // diurnal curve (resolved)
  std::size_t seg_ = 0;
  Time seg_left_ = 0.0;
};

/// Lazy merged source: one SiteStream per site, each holding exactly one
/// pending arrival; a min-heap keyed (release, site) picks the global next
/// and the popped stream generates its successor. O(sites) live state.
class GeneratedSource final : public ArrivalSource {
 public:
  explicit GeneratedSource(const ArrivalSpec& spec) : spec_(spec) {
    streams_.reserve(spec_.site_count);
    for (SiteId s = 0; s < spec_.site_count; ++s) {
      streams_.emplace_back(spec_, s);
      heap_.push_back(Pending{streams_.back().generate(), s});
    }
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  }

  std::optional<JobArrival> next() override {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Pending p = std::move(heap_.back());
    heap_.back() = Pending{streams_[p.site].generate(), p.site};
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    // Emission order == (release, site) order; fresh job, sole owner here.
    const_cast<Job&>(*p.arrival.job).id = ++emitted_;
    return std::move(p.arrival);
  }

  /// The heap array is saved VERBATIM (not re-heapified on load): the saved
  /// layout already satisfies the heap property, and std::make_heap could
  /// legally produce a different-but-equivalent layout whose later pop/push
  /// sequence diverges. Restoring the exact array keeps the resumed
  /// emission order bit-identical to the uninterrupted stream.
  void save_state(snap::Writer& w) const override {
    w.u64(emitted_);
    w.u64(streams_.size());
    for (const auto& s : streams_) s.save_state(w);
    w.u64(heap_.size());
    snap::SaveContext ctx;
    for (const auto& p : heap_) {
      w.u32(p.site);
      w.u32(p.arrival.site);
      snap::Access::save_job(w, ctx, p.arrival.job);
    }
  }
  void load_state(snap::Reader& r) override {
    emitted_ = r.u64();
    if (r.u64() != streams_.size())
      r.fail("generated source spans a different site count than this spec");
    for (auto& s : streams_) s.load_state(r);
    const std::uint64_t n = r.u64();
    if (n != heap_.size())
      r.fail("generated source heap size does not match this spec");
    snap::LoadContext ctx;
    for (auto& p : heap_) {
      p.site = r.u32();
      p.arrival.site = r.u32();
      p.arrival.job = snap::Access::load_job(r, ctx);
      if (p.arrival.job == nullptr) r.fail("pending arrival without a job");
    }
  }

 private:
  struct Pending {
    JobArrival arrival;
    SiteId site = 0;
  };
  /// Max-heap comparator inverted into a min-heap on (release, site).
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.arrival.job->release != b.arrival.job->release)
        return a.arrival.job->release > b.arrival.job->release;
      return a.site > b.site;
    }
  };

  ArrivalSpec spec_;  // owned copy: streams reference its workload/curve
  std::vector<SiteStream> streams_;
  std::vector<Pending> heap_;
  JobId emitted_ = 0;
};

class TraceSource final : public ArrivalSource {
 public:
  explicit TraceSource(const ArrivalSpec& spec)
      : trace_(spec.trace), site_count_(spec.site_count) {
    Time prev = 0.0;
    for (const auto& a : trace_) {
      RTDS_REQUIRE(a.job != nullptr);
      RTDS_REQUIRE_MSG(a.site < site_count_,
                       "trace site " << a.site << " outside the "
                                     << site_count_ << "-site system");
      RTDS_REQUIRE_MSG(a.job->release >= prev,
                       "trace replay requires release-sorted arrivals");
      prev = a.job->release;
    }
  }

  std::optional<JobArrival> next() override {
    if (pos_ >= trace_.size()) return std::nullopt;
    return trace_[pos_++];
  }

  /// The trace itself is static configuration; only the cursor is live.
  void save_state(snap::Writer& w) const override {
    w.u64(trace_.size());
    w.u64(pos_);
  }
  void load_state(snap::Reader& r) override {
    if (r.u64() != trace_.size())
      r.fail("trace source length does not match this spec");
    pos_ = static_cast<std::size_t>(r.u64());
    if (pos_ > trace_.size()) r.fail("trace cursor beyond the trace");
  }

 private:
  std::vector<JobArrival> trace_;
  std::size_t site_count_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<ArrivalSource> make_arrival_source(const ArrivalSpec& spec) {
  validate_spec(spec);
  if (spec.kind == ArrivalKind::kTrace)
    return std::make_unique<TraceSource>(spec);
  return std::make_unique<GeneratedSource>(spec);
}

std::vector<JobArrival> drain(ArrivalSource& source, Time duration) {
  RTDS_REQUIRE(duration > 0.0);
  std::vector<JobArrival> out;
  while (auto a = source.next()) {
    if (a->job->release >= duration) break;  // stream is time-ordered: done
    out.push_back(std::move(*a));
  }
  return out;
}

std::vector<JobArrival> generate_open_workload(const ArrivalSpec& spec,
                                               Time duration) {
  validate_spec(spec);
  RTDS_REQUIRE(duration > 0.0);
  if (spec.kind == ArrivalKind::kTrace) {
    std::vector<JobArrival> out;
    for (const auto& a : spec.trace) {
      RTDS_REQUIRE_MSG(a.site < spec.site_count,
                       "trace site " << a.site << " outside the "
                                     << spec.site_count << "-site system");
      if (a.job->release < duration) out.push_back(a);
    }
    return out;
  }
  std::vector<JobArrival> arrivals;
  for (SiteId site = 0; site < spec.site_count; ++site) {
    SiteStream stream(spec, site);
    for (;;) {
      JobArrival a = stream.generate();
      if (a.job->release >= duration) break;
      arrivals.push_back(std::move(a));
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const JobArrival& a, const JobArrival& b) {
              if (a.job->release != b.job->release)
                return a.job->release < b.job->release;
              return a.site < b.site;
            });
  JobId next_id = 1;
  for (auto& a : arrivals)
    const_cast<Job&>(*a.job).id = next_id++;  // fresh jobs; sole owner here
  return arrivals;
}

}  // namespace rtds::load
