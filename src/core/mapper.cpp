#include "core/mapper.hpp"

#include <algorithm>
#include <cmath>

#include "dag/analysis.hpp"
#include "util/inline_vec.hpp"
#include "sched/plan.hpp"

namespace rtds {

const char* to_string(TaskPriority priority) {
  switch (priority) {
    case TaskPriority::kBottomLevel: return "bottom_level";
    case TaskPriority::kCost: return "cost";
    case TaskPriority::kFifo: return "fifo";
  }
  return "?";
}

const char* to_string(AdjustmentCase c) {
  switch (c) {
    case AdjustmentCase::kReject: return "i(reject)";
    case AdjustmentCase::kStretch: return "ii(stretch)";
    case AdjustmentCase::kLaxity: return "iii(laxity)";
  }
  return "?";
}

std::vector<WindowedTask> TrialMapping::tasks_of(const Dag& dag,
                                                 std::uint32_t u) const {
  if (u < by_processor.size()) {
    const auto& cached = by_processor[u];
    return {cached.begin(), cached.end()};
  }
  std::vector<WindowedTask> tasks;
  for (TaskId t = 0; t < dag.task_count(); ++t)
    if (assignment[t] == u)
      tasks.push_back(WindowedTask{t, release[t], deadline[t], dag.cost(t)});
  return tasks;
}

namespace {

struct ScheduleBuild {
  std::vector<std::uint32_t> assignment;
  std::vector<Time> start, finish;
  std::vector<TaskId> order;  ///< tasks in mapping order
  Time makespan = 0.0;        ///< max finish - release
};

/// Over-estimated communication delay between tasks q -> t given their
/// logical processors (§12: ω = ACS delay diameter; §13 option adds the
/// data-volume transfer time).
Time comm_cost(const Dag& dag, TaskId q, TaskId t, std::uint32_t pq,
               std::uint32_t pt, Time omega, const MapperConfig& cfg) {
  if (pq == pt) return 0.0;
  Time w = omega;
  if (cfg.account_data_volumes) {
    const double vol = dag.data_volume(q, t);
    if (vol > 0.0) w += vol / cfg.link_throughput;
  }
  return w;
}

/// List scheduling by bottom-level priority, greedy earliest-finish-time
/// processor selection (§12). `rates[p]` is the execution rate of logical
/// processor p (surplus I_p, or 1.0 for the S* recomputation).
ScheduleBuild list_schedule(const MapperInput& in, const MapperConfig& cfg,
                            const std::vector<double>& rates) {
  const Dag& dag = *in.dag;
  const auto n = dag.task_count();
  const auto np = rates.size();
  ScheduleBuild out;
  out.assignment.assign(n, 0);
  out.start.assign(n, 0.0);
  out.finish.assign(n, 0.0);
  out.order.reserve(n);

  // §13 local knowledge: tasks mapped onto the initiator's own logical
  // processor are slotted into its exact idle intervals (on a scratch copy)
  // at full local speed instead of the surplus-degraded estimate.
  const bool exact_initiator = in.initiator_plan != nullptr;
  SchedulingPlan initiator_scratch;
  if (exact_initiator) {
    RTDS_REQUIRE(in.initiator_index < np);
    RTDS_REQUIRE(in.initiator_power > 0.0);
    initiator_scratch = *in.initiator_plan;
  }
  auto is_exact_proc = [&](std::uint32_t p) {
    return exact_initiator && p == in.initiator_index;
  };

  InlineVec<Time, 32> priority_storage;
  const Time* priority = nullptr;
  switch (cfg.task_priority) {
    case TaskPriority::kBottomLevel:
      priority = dag.bottom_levels().data();  // finalize()-time cache
      break;
    case TaskPriority::kCost:
      priority_storage.assign(n, 0.0);
      for (TaskId t = 0; t < n; ++t) priority_storage[t] = dag.cost(t);
      priority = priority_storage.begin();
      break;
    case TaskPriority::kFifo:
      priority_storage.assign(n, 0.0);  // ties resolve to the smallest id
      priority = priority_storage.begin();
      break;
  }
  InlineVec<Time, 16> avail;
  avail.assign(np, in.release);
  InlineVec<std::size_t, 32> missing;
  missing.assign(n, 0);
  InlineVec<TaskId, 32> free_list;
  for (TaskId t = 0; t < n; ++t) {
    missing[t] = dag.predecessors(t).size();
    if (missing[t] == 0) free_list.push_back(t);
  }

  while (!free_list.empty()) {
    // Task selection: highest critical-path priority among free tasks.
    std::size_t best = 0;
    for (std::size_t i = 1; i < free_list.size(); ++i) {
      const TaskId a = free_list[i], b = free_list[best];
      if (time_gt(priority[a], priority[b]) ||
          (time_eq(priority[a], priority[b]) && a < b))
        best = i;
    }
    const TaskId t = free_list[best];
    free_list.erase(free_list.begin() + best);

    // Processor selection: earliest finishing time.
    std::uint32_t chosen = 0;
    Time chosen_start = 0.0, chosen_finish = kInfiniteTime;
    for (std::uint32_t p = 0; p < np; ++p) {
      Time est = avail[p];
      for (TaskId q : dag.predecessors(t)) {
        const Time arrive =
            out.finish[q] +
            comm_cost(dag, q, t, out.assignment[q], p, in.comm_diameter, cfg);
        est = std::max(est, arrive);
      }
      Time start = est;
      Time duration = dag.cost(t) / rates[p];
      if (is_exact_proc(p)) {
        duration = dag.cost(t) / in.initiator_power;
        start = initiator_scratch.earliest_fit(est, kInfiniteTime, duration);
      }
      const Time fin = start + duration;
      if (time_lt(fin, chosen_finish)) {
        chosen = p;
        chosen_start = start;
        chosen_finish = fin;
      }
    }
    out.assignment[t] = chosen;
    out.start[t] = chosen_start;
    out.finish[t] = chosen_finish;
    avail[chosen] = chosen_finish;
    if (is_exact_proc(chosen))
      initiator_scratch.reserve(
          Reservation{0, t, chosen_start, chosen_finish});
    out.order.push_back(t);
    for (TaskId s : dag.successors(t))
      if (--missing[s] == 0) free_list.push_back(s);
  }
  RTDS_CHECK_MSG(out.order.size() == n, "mapper missed tasks");

  for (TaskId t = 0; t < n; ++t)
    out.makespan = std::max(out.makespan, out.finish[t] - in.release);
  return out;
}

/// Recomputes start/finish keeping assignment and per-processor task order,
/// with all rates = 100% — the schedule S* of §12.2.
ScheduleBuild recompute_full_speed(const MapperInput& in,
                                   const MapperConfig& cfg,
                                   const ScheduleBuild& s) {
  const Dag& dag = *in.dag;
  ScheduleBuild out;
  out.assignment = s.assignment;
  out.order = s.order;
  out.start.assign(dag.task_count(), 0.0);
  out.finish.assign(dag.task_count(), 0.0);
  const bool exact_initiator = in.initiator_plan != nullptr;
  SchedulingPlan initiator_scratch;
  if (exact_initiator) initiator_scratch = *in.initiator_plan;
  InlineVec<Time, 16> avail;
  avail.assign(in.surpluses.size(), in.release);
  for (TaskId t : s.order) {
    const auto p = s.assignment[t];
    Time est = avail[p];
    for (TaskId q : dag.predecessors(t)) {
      const Time arrive =
          out.finish[q] +
          comm_cost(dag, q, t, s.assignment[q], p, in.comm_diameter, cfg);
      est = std::max(est, arrive);
    }
    if (exact_initiator && p == in.initiator_index) {
      // Already exact in S: the same placement is its own lower bound.
      const Time duration = dag.cost(t) / in.initiator_power;
      const Time start =
          initiator_scratch.earliest_fit(est, kInfiniteTime, duration);
      out.start[t] = start;
      out.finish[t] = start + duration;
      initiator_scratch.reserve(Reservation{0, t, out.start[t], out.finish[t]});
    } else {
      out.start[t] = est;
      out.finish[t] = est + dag.cost(t);
      avail[p] = out.finish[t];
    }
  }
  for (TaskId t = 0; t < dag.task_count(); ++t)
    out.makespan = std::max(out.makespan, out.finish[t] - in.release);
  return out;
}

/// Maximum task count over "critical chains" of S*: chains whose links are
/// tight precedence arcs (finish + comm == start) or tight same-processor
/// sequencing (finish == start), ending at a task finishing at M*.
/// Also reports which tasks lie on a longest such chain (for the §13
/// busyness-weighted laxity option).
struct CriticalChains {
  std::size_t eta = 1;
  std::vector<bool> on_longest;
};

CriticalChains critical_chains(const MapperInput& in, const MapperConfig& cfg,
                               const ScheduleBuild& star) {
  const Dag& dag = *in.dag;
  const auto n = dag.task_count();
  CriticalChains out;
  out.on_longest.assign(n, false);
  if (n == 0) return out;

  // Processor-sequencing predecessor of each task (previous in order on the
  // same logical processor).
  std::vector<TaskId> proc_pred(n, static_cast<TaskId>(-1));
  {
    std::vector<TaskId> last(in.surpluses.size(), static_cast<TaskId>(-1));
    for (TaskId t : star.order) {
      const auto p = star.assignment[t];
      proc_pred[t] = last[p];
      last[p] = t;
    }
  }

  // cnt[t] = max tasks on a tight chain ending at t. Process in star.order
  // (starts are non-decreasing along both kinds of tight parents).
  std::vector<std::size_t> cnt(n, 1);
  auto tight_parents = [&](TaskId t, auto&& visit) {
    for (TaskId q : dag.predecessors(t)) {
      const Time arrive = star.finish[q] + comm_cost(dag, q, t,
                                                     star.assignment[q],
                                                     star.assignment[t],
                                                     in.comm_diameter, cfg);
      if (time_eq(arrive, star.start[t])) visit(q);
    }
    const TaskId pp = proc_pred[t];
    if (pp != static_cast<TaskId>(-1) &&
        time_eq(star.finish[pp], star.start[t]))
      visit(pp);
  };
  for (TaskId t : star.order)
    tight_parents(t, [&](TaskId q) { cnt[t] = std::max(cnt[t], cnt[q] + 1); });

  const Time mstar_end = in.release + star.makespan;
  for (TaskId t = 0; t < n; ++t)
    if (time_eq(star.finish[t], mstar_end)) out.eta = std::max(out.eta, cnt[t]);

  // Mark tasks on some longest chain: walk back from terminal tasks whose
  // cnt equals eta, following parents with cnt exactly one less.
  std::vector<TaskId> stack;
  for (TaskId t = 0; t < n; ++t)
    if (time_eq(star.finish[t], mstar_end) && cnt[t] == out.eta) {
      out.on_longest[t] = true;
      stack.push_back(t);
    }
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    tight_parents(t, [&](TaskId q) {
      if (cnt[q] + 1 == cnt[t] && !out.on_longest[q]) {
        out.on_longest[q] = true;
        stack.push_back(q);
      }
    });
  }
  return out;
}

}  // namespace

std::optional<TrialMapping> build_trial_mapping(const MapperInput& input,
                                                const MapperConfig& cfg,
                                                AdjustmentCase* failure_case) {
  RTDS_REQUIRE(input.dag != nullptr);
  RTDS_REQUIRE(input.dag->finalized());
  RTDS_REQUIRE_MSG(!input.dag->empty(), "cannot map an empty DAG");
  RTDS_REQUIRE(!input.surpluses.empty());
  for (std::size_t i = 0; i < input.surpluses.size(); ++i) {
    RTDS_REQUIRE_MSG(input.surpluses[i] > 0.0 && input.surpluses[i] <= 1.0,
                     "surplus out of (0,1]: " << input.surpluses[i]);
    if (i > 0)
      RTDS_REQUIRE_MSG(input.surpluses[i] <= input.surpluses[i - 1] + 1e-12,
                       "surpluses must be sorted descending");
  }
  RTDS_REQUIRE(time_lt(input.release, input.deadline));
  RTDS_REQUIRE(input.comm_diameter >= 0.0);
  if (cfg.account_data_volumes)
    RTDS_REQUIRE_MSG(cfg.link_throughput > 0.0,
                     "account_data_volumes requires link_throughput > 0");

  const Dag& dag = *input.dag;
  const Time r = input.release;
  const Time d = input.deadline;
  const Time window = d - r;

  // Schedule S (surplus-degraded rates), then S* (full speed, same mapping).
  const ScheduleBuild s = list_schedule(input, cfg, input.surpluses);
  const ScheduleBuild star = recompute_full_speed(input, cfg, s);

  TrialMapping m;
  m.assignment = s.assignment;
  m.makespan = s.makespan;
  m.makespan_full = star.makespan;
  m.s_start = s.start;
  m.s_finish = s.finish;
  m.star_start = star.start;
  m.star_finish = star.finish;

  const auto n = dag.task_count();
  m.release.assign(n, r);
  m.deadline.assign(n, d);

  // §12.2 case analysis.
  if (time_gt(star.makespan, window)) {
    // (i) even the full-speed lower bound misses the deadline.
    if (failure_case) *failure_case = AdjustmentCase::kReject;
    return std::nullopt;
  }

  if (time_le(s.makespan, window)) {
    // (ii) stretch S's windows by (d - r) / M  (eq. 3).
    m.adjustment = AdjustmentCase::kStretch;
    const double factor = window / s.makespan;
    for (TaskId t = 0; t < n; ++t)
      m.deadline[t] = r + (s.finish[t] - r) * factor;
  } else {
    // (iii) M* <= d - r < M: distribute the extra laxity (eq. 4).
    m.adjustment = AdjustmentCase::kLaxity;
    const Time budget = window - star.makespan;
    const auto chains = critical_chains(input, cfg, star);
    std::vector<Time> laxity(n, budget / static_cast<double>(chains.eta));
    if (cfg.busyness_weighted_laxity) {
      // §13: only longest-chain tasks receive laxity, weighted by the
      // busyness of their logical processor.
      double total_w = 0.0;
      std::vector<double> w(n, 0.0);
      for (TaskId t = 0; t < n; ++t)
        if (chains.on_longest[t]) {
          w[t] = 1.0 - input.surpluses[s.assignment[t]];
          total_w += w[t];
        }
      if (total_w <= 1e-12) {
        // All involved processors fully idle: fall back to uniform weights
        // over the longest-chain tasks.
        std::size_t cnt = 0;
        for (TaskId t = 0; t < n; ++t)
          if (chains.on_longest[t]) ++cnt;
        for (TaskId t = 0; t < n; ++t)
          w[t] = chains.on_longest[t] ? 1.0 / static_cast<double>(cnt) : 0.0;
        total_w = 1.0;
      }
      for (TaskId t = 0; t < n; ++t) laxity[t] = budget * w[t] / total_w;
    }
    // eq. (4), reverse topological order.
    const auto& topo = dag.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const TaskId t = *it;
      if (dag.successors(t).empty()) {
        m.deadline[t] = d;
        continue;
      }
      Time dl = kInfiniteTime;
      for (TaskId sj : dag.successors(t)) {
        const Time w_ts = comm_cost(dag, t, sj, s.assignment[t],
                                    s.assignment[sj], input.comm_diameter, cfg);
        dl = std::min(dl, m.deadline[sj] - laxity[sj] - dag.cost(sj) - w_ts);
      }
      m.deadline[t] = dl;
    }
  }

  // eq. (5), topological order (shared by cases ii and iii).
  for (TaskId t : dag.topological_order()) {
    if (dag.predecessors(t).empty()) {
      m.release[t] = r;
      continue;
    }
    Time rel = 0.0;
    for (TaskId q : dag.predecessors(t)) {
      const Time w_qt = comm_cost(dag, q, t, s.assignment[q], s.assignment[t],
                                  input.comm_diameter, cfg);
      rel = std::max(rel, m.deadline[q] + w_qt);
    }
    m.release[t] = rel;
  }

  // Defensive feasibility sweep (see MapperConfig doc).
  if (cfg.reject_infeasible_windows) {
    for (TaskId t = 0; t < n; ++t) {
      const bool bad = time_gt(m.release[t] + dag.cost(t), m.deadline[t]) ||
                       time_gt(m.deadline[t], d) || time_lt(m.release[t], r);
      if (bad) {
        if (failure_case) *failure_case = m.adjustment;
        return std::nullopt;
      }
    }
  }

  // Renumber logical processors to the used subset, preserving the
  // descending-surplus order.
  std::vector<std::uint32_t> remap(input.surpluses.size(),
                                   static_cast<std::uint32_t>(-1));
  for (TaskId t = 0; t < n; ++t) {
    const auto p = m.assignment[t];
    if (remap[p] == static_cast<std::uint32_t>(-1)) remap[p] = 0;  // mark used
  }
  std::uint32_t next = 0;
  for (std::size_t p = 0; p < remap.size(); ++p)
    if (remap[p] != static_cast<std::uint32_t>(-1)) {
      remap[p] = next++;
      m.surpluses.push_back(input.surpluses[p]);
    }
  for (TaskId t = 0; t < n; ++t) m.assignment[t] = remap[m.assignment[t]];
  m.used_processors = next;
  RTDS_CHECK(m.used_processors >= 1);

  // Group the windowed tasks per logical processor once; validation reads
  // this on every ACS site instead of re-scanning the assignment.
  m.by_processor.assign(m.used_processors, {});
  for (TaskId t = 0; t < n; ++t)
    m.by_processor[m.assignment[t]].push_back(
        WindowedTask{t, m.release[t], m.deadline[t], dag.cost(t)});
  return m;
}

}  // namespace rtds
