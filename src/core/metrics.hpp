// Experiment metrics shared by RTDS and all baselines.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "dag/dag.hpp"
#include "net/topology.hpp"
#include "sim/network.hpp"
#include "util/stats.hpp"

namespace rtds {

enum class JobOutcome {
  kAcceptedLocal,   ///< guaranteed by the arrival site alone (§5)
  kAcceptedRemote,  ///< distributed over an ACS (or offloaded, for baselines)
  kRejected,
};

const char* to_string(JobOutcome outcome);

enum class RejectReason {
  kNone,
  kNoCandidates,     ///< no sphere members available (or none beyond k)
  kGated,            ///< pre-enrollment gate: deadline unreachable (EnrollGate)
  kMapperCaseI,      ///< §12.2 case (i): M* > d - r
  kMapperWindows,    ///< defensive infeasible-window rejection
  kMatchingFailed,   ///< §10: maximum coupling < |U|
  kOffloadRefused,   ///< baselines: remote site's local test failed
  kSiteDown,         ///< faults: arrival at (or in-flight work on) a dead site
  kShed,             ///< overload: bounded admission queue shed the job
};

const char* to_string(RejectReason reason);

/// One line per job, reported by whichever scheduler made the decision.
struct JobDecision {
  JobId job = 0;
  SiteId initiator = 0;
  JobOutcome outcome = JobOutcome::kRejected;
  RejectReason reject_reason = RejectReason::kNone;
  Time arrival = 0.0;
  Time decision_time = 0.0;
  Time deadline = 0.0;
  std::size_t task_count = 0;
  std::size_t acs_size = 0;          ///< sites involved (1 for local)
  std::uint64_t link_messages = 0;   ///< per-job protocol cost
  int adjustment_case = 0;           ///< 0 when no mapper ran
  /// The accepting protocol round survived a fault-triggered timeout
  /// (a sphere member died or a message was lost mid-protocol and the
  /// initiator worked around it). Always false in fault-free runs.
  bool fault_recovered = false;
};

/// Aggregated over a run; identical schema for RTDS and baselines so the
/// comparison benches print uniform rows.
struct RunMetrics {
  /// Jobs that received a decision. Every arrival gets exactly one
  /// (accepted_local + accepted_remote + rejected == arrived), including
  /// arrivals at crashed sites and jobs orphaned mid-protocol by a crash.
  std::uint64_t arrived = 0;
  /// Accepted by the arrival site's local guarantee test alone (§5).
  std::uint64_t accepted_local = 0;
  /// Accepted via a distributed round (RTDS ACS; offload for baselines).
  std::uint64_t accepted_remote = 0;
  /// Rejected for any reason; reject_by_reason has the breakdown.
  std::uint64_t rejected = 0;
  std::uint64_t deadline_misses = 0;  ///< hard invariant: must stay 0
  /// Dispatches that arrived too late to honour their windows (per-site
  /// events). Always 0 under the ideal transport; under the contended
  /// transport they count protocol-overhead under-estimates (RtdsConfig).
  std::uint64_t dispatch_failures = 0;
  /// Accepted jobs with at least one failed dispatch (not fully committed).
  std::uint64_t failed_jobs = 0;

  // --- fault-injection observability (all zero in fault-free runs) ---
  /// Accepted jobs that later lost committed work to a site crash.
  std::uint64_t jobs_lost = 0;
  /// Jobs accepted even though their protocol round hit a fault-triggered
  /// timeout (the initiator rescheduled around missing members/messages).
  std::uint64_t jobs_rescheduled = 0;
  /// Nominal §7.2 table-exchange traffic of the routing repairs triggered
  /// by topology-change events (2 × live links × 2h per repair).
  std::uint64_t repair_messages = 0;

  // --- adversarial-network observability (DESIGN.md §12; all zero in
  // fault-free runs) ---
  /// Extra copies the duplication fault process injected (== the
  /// transport's MessageStats::messages_duplicated).
  std::uint64_t messages_duplicated = 0;
  /// Protocol messages resent by the ack+retransmit path (RTDS only, and
  /// only with RtdsConfig::retransmit enabled).
  std::uint64_t retransmits = 0;
  /// Safety-invariant violations the runtime checker observed (must stay 0;
  /// only counted when the checker is enabled).
  std::uint64_t invariant_violations = 0;

  std::map<int, std::uint64_t> reject_by_reason;    ///< keyed by RejectReason
  std::map<int, std::uint64_t> adjustment_cases;    ///< keyed by case 1/2/3

  RunningStat decision_latency;  ///< arrival -> accept/reject (sim time)
  RunningStat acs_size;          ///< distributed attempts only (acs_size > 1)
  RunningStat msgs_per_job;      ///< link messages per job (all jobs)
  RunningStat job_lateness;      ///< completion - deadline (accepted jobs; <= 0)

  MessageStats transport;        ///< network-level totals (incl. PCS build)
  std::uint64_t pcs_build_messages = 0;  ///< one-time APSP cost

  /// Largest PCS over all sites and its largest hop diameter (RTDS only;
  /// baselines leave both 0). These feed E1's analytic per-job message
  /// bound, and carrying them here keeps the Policy API's RunMetrics the
  /// complete experiment record — scenarios never reach into live nodes.
  std::uint64_t pcs_size_max = 0;
  std::uint64_t pcs_hop_diameter_max = 0;

  double guarantee_ratio() const {
    return arrived == 0
               ? 0.0
               : static_cast<double>(accepted_local + accepted_remote) /
                     static_cast<double>(arrived);
  }
  std::uint64_t accepted() const { return accepted_local + accepted_remote; }

  /// Fraction of jobs accepted AND fully committed on every assigned site
  /// (equals guarantee_ratio() whenever failed_jobs == 0).
  double delivered_ratio() const {
    return arrived == 0 ? 0.0
                        : static_cast<double>(accepted() - failed_jobs) /
                              static_cast<double>(arrived);
  }

  void record(const JobDecision& d);

  /// Emits the whole record as ONE JSON object on ONE line (JSONL row):
  /// scalar counters verbatim, the reason/case maps as nested objects
  /// keyed by their enum names (reasons) / case numbers, each RunningStat
  /// as {count, mean, stddev, min, max}, and the transport block with
  /// per-category send/link counts. Deterministic bytes for a
  /// deterministic run: doubles print as printf %.17g, map iteration is
  /// key-ordered, no whitespace varies. Ends with '\n'.
  void to_jsonl(std::ostream& os) const;
};

}  // namespace rtds
