// System driver: wires topology, simulator, transport, PCS construction and
// one RtdsNode per site; runs a workload to completion and enforces the
// end-of-run invariants (every accepted job met its deadline, every lock
// released, every queue drained).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include <span>

#include "core/metrics.hpp"
#include "core/rtds_node.hpp"
#include "core/workload.hpp"
#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "routing/apsp.hpp"
#include "util/flat_map.hpp"

namespace rtds {

/// Which message transport the protocol runs over (see routing/transport.hpp).
enum class TransportModel {
  kIdeal,      ///< min-delay delivery, infinite bandwidth (paper base model)
  kContended,  ///< store-and-forward, per-link FIFO with finite bandwidth
};

const char* to_string(TransportModel model);

struct SystemConfig {
  RtdsConfig node;
  TransportModel transport_model = TransportModel::kIdeal;
  /// Link bandwidth in message-size units per time unit (contended only).
  double link_bandwidth = 100.0;
  /// Also run the §7 distributed APSP as real messages (on a throwaway
  /// simulator) to measure the one-time PCS construction cost and check it
  /// against the in-memory tables. Off by default: it is O(sites²·h).
  bool measure_pcs_build_cost = false;
  /// Fault script (DESIGN.md §9). Empty (the default) keeps the run on the
  /// exact faultless code path — no timers armed, no RNG consumed, output
  /// bit-identical to a build without the fault layer.
  fault::FaultPlan faults;
  /// Runs the §12 runtime invariant checker alongside the simulation
  /// (lock conservation, at-most-one guarantee, job conservation, monotone
  /// time, no delivery to a down site). Also enabled by the process-global
  /// fault::set_check_invariants (the CLIs' --check-invariants). The
  /// checker only *observes* — enabling it never changes simulation bytes.
  bool check_invariants = false;

  // --- open-system (src/load/) hooks; all inert by default ---
  /// Streaming observer: every JobDecision as it is recorded (with
  /// link_messages filled in). Never changes simulation bytes.
  std::function<void(const JobDecision&)> on_decision_observed;
  /// Streaming observer: an accepted job finished its last task —
  /// (arrival, completion) in sim time. Jobs with failed dispatches and
  /// crash-lost jobs never fire it.
  std::function<void(Time, Time)> on_job_completed;
  /// Keep the per-job decisions() vector. Long --duration streaming runs
  /// turn this off and consume on_decision_observed instead, so memory
  /// stays bounded by the windows, not the horizon.
  bool retain_decisions = true;
  /// Record a replayable EventRecord for every scheduled event so the run
  /// can be checkpointed (snap/, DESIGN.md §14). Off by default: recording
  /// costs a hash-map entry per pending event and one branch per schedule
  /// site, and Snapshot::save requires it from the very first event.
  bool record_events = false;
};

class RtdsSystem : public NodeEnv {
 public:
  RtdsSystem(Topology topo, SystemConfig cfg);

  /// Runs all arrivals to completion (drains the event queue) and verifies
  /// invariants. Call once.
  void run(const std::vector<JobArrival>& arrivals);

  /// Open-system variant: pulls arrivals lazily from `next` (non-decreasing
  /// release order; nullopt ends the stream) and runs until the stream ends
  /// AND the event queue drains. At most one un-fired arrival is ever held,
  /// so memory scales with in-flight work, never the horizon. Call once
  /// (exclusive with run()).
  void run_stream(std::function<std::optional<JobArrival>()> next);

  // --- checkpointable phases (snap/, DESIGN.md §14) ---
  // run(a)        == start(a); while (step_events(N)) {} finish();
  // run_stream(n) == start_stream(n); ...same drain...; finish();
  // The split lets a caller pause at any event boundary, Snapshot::save,
  // and either keep going or exit; a resumed run re-enters between start
  // and finish via Snapshot::load.

  /// Validates + schedules every arrival (closed-world runs).
  void start(const std::vector<JobArrival>& arrivals);
  /// Primes the lazy arrival chain (open-system runs).
  void start_stream(std::function<std::optional<JobArrival>()> next);
  /// Fires at most `max_events` events; returns the number fired (0 means
  /// the queue is drained and finish() may run).
  std::size_t step_events(std::size_t max_events);
  /// Fires events with time <= t_end (later events stay queued).
  std::size_t run_events_until(Time t_end);
  /// End-of-run invariant verification + metrics fold. Call exactly once,
  /// after the queue drained.
  void finish();

  /// Re-installs the lazy arrival chain after Snapshot::load — the stream
  /// closure itself cannot be serialized, so an open-system resume
  /// reconstructs the ArrivalSource (whose generator state IS in the
  /// snapshot) and hands the pull function back in before stepping.
  /// Closed-world resumes never need this (their arrivals are pending
  /// events in the snapshot).
  void set_stream_source(std::function<std::optional<JobArrival>()> next) {
    stream_next_ = std::move(next);
  }

  const RunMetrics& metrics() const { return metrics_; }
  const Topology& topology() const { return topo_; }
  const RtdsNode& node(SiteId s) const { return *nodes_.at(s); }
  Simulator& simulator() { return sim_; }
  const std::vector<JobDecision>& decisions() const { return decisions_; }
  /// Live routing tables (post-repair view) — the fuzzer's
  /// repair-vs-full-recompute cross-check reads these after the run.
  const std::vector<RoutingTable>& routing_tables() const { return tables_; }
  /// Final fault view (which sites/links ended the run down), or nullptr
  /// when the run had no fault plan.
  const fault::FaultState* fault_state() const { return fault_state_.get(); }

  // --- NodeEnv ---
  void on_job_decision(const JobDecision& decision) override;
  void on_task_complete(JobId job, TaskId task, SiteId site, Time end) override;
  void on_job_messages(JobId job, std::uint64_t hops) override;
  void on_dispatch_failure(JobId job, SiteId site) override;
  void on_job_lost(JobId job, SiteId site) override;
  void on_retransmit(JobId job) override;
  fault::InvariantChecker* checker() override { return checker_.get(); }

 private:
  void verify_invariants();
  /// Validates one streamed arrival and schedules its submit event, which
  /// on firing pulls + schedules the successor (the lazy chain).
  void schedule_streamed(JobArrival a);
  /// Body of a streamed-arrival event: submit, then pull + schedule the
  /// successor. Named so a checkpoint replay re-enters the identical path.
  void fire_stream_arrival(const JobArrival& a);
  /// Applies one fault-plan event: flips the FaultState, crashes/recovers
  /// the node for site events, and re-triggers the §7 routing repair on
  /// any actual topology change.
  void apply_fault(const fault::FaultEvent& ev);
  /// Repairs the routing tables in place after the live topology changed
  /// at the given seed sites (the transports reference tables_ and see the
  /// repair immediately). Incremental (DESIGN.md §10): only destinations
  /// whose 2h+1-hop ball contains a changed site are re-converged, which
  /// is what keeps large-N fault runs affordable; the traffic charged to
  /// RunMetrics::repair_messages stays the protocol's nominal full
  /// exchange, so experiment outputs are unchanged. Partitions/heals pass
  /// every cut endpoint; single link/site events pass one or two sites.
  void repair_routing(std::span<const SiteId> changed);

  Topology topo_;
  SystemConfig cfg_;
  Simulator sim_;
  std::vector<RoutingTable> tables_;
  /// Reusable incremental-repair engine (DESIGN.md §10), created on the
  /// first topology-change event — faultless runs never pay for it.
  std::unique_ptr<ApspRepairer> repairer_;
  std::unique_ptr<fault::FaultState> fault_state_;
  /// §12 runtime invariant checker; null unless enabled (config or the
  /// process-global flag), so disabled runs pay one null test per event.
  std::unique_ptr<fault::InvariantChecker> checker_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<RtdsNode>> nodes_;
  RunMetrics metrics_;
  std::vector<JobDecision> decisions_;
  // Per-job bookkeeping is open-addressed (util/flat_map.hpp), consistent
  // with the zero-allocation core: these are touched on every protocol
  // message / task completion, and a node-based map paid an allocation plus
  // pointer chases per job. verify_invariants folds accepted_ in sorted key
  // order, so metrics stay bit-identical to the std::map this replaces.
  FlatMap<JobId, std::uint64_t> job_messages_;

  struct JobTrack {
    std::size_t tasks_expected = 0;
    std::size_t tasks_done = 0;
    Time arrival = 0.0;  ///< feeds the on_job_completed sojourn observer
    Time completion = 0.0;
    Time deadline = 0.0;
    bool failed = false;  ///< a dispatch for this job could not be honoured
  };
  FlatMap<JobId, JobTrack> accepted_;
  /// Dispatch failures observed before the initiator's decision record
  /// arrived (possible for the initiator's own commit, which precedes its
  /// conclude); reconciled in on_job_decision.
  FlatSet<JobId> early_failures_;
  bool ran_ = false;
  // --- streaming state (run_stream only) ---
  std::function<std::optional<JobArrival>()> stream_next_;
  Time last_stream_release_ = 0.0;

  friend struct snap::Access;
};

}  // namespace rtds
