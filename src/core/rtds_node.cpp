#include "core/rtds_node.hpp"

#include <algorithm>

#include "dag/analysis.hpp"
#include "fault/bugs.hpp"
#include "fault/invariants.hpp"
#include "matching/bipartite.hpp"
#include "obs/trace.hpp"
#include "util/inline_vec.hpp"
#include "util/logging.hpp"

namespace rtds {

namespace {
/// Checkpoint annotation for a node-owned timer event (DESIGN.md §14);
/// callers fill kind-specific fields on the returned record.
EventRecord node_record(EventRecord::Kind kind, SiteId site, JobId job = 0) {
  EventRecord rec;
  rec.kind = kind;
  rec.site = site;
  rec.job = job;
  return rec;
}
}  // namespace

const char* to_string(EnrollPolicy policy) {
  switch (policy) {
    case EnrollPolicy::kNack: return "nack";
    case EnrollPolicy::kTimeout: return "timeout";
  }
  return "?";
}

const char* to_string(EnrollGate gate) {
  switch (gate) {
    case EnrollGate::kNone: return "none";
    case EnrollGate::kCriticalPath: return "critical_path";
    case EnrollGate::kProtocolAware: return "protocol_aware";
  }
  return "?";
}

const char* to_string(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kDropNewest: return "drop_newest";
    case ShedPolicy::kDropLowestLaxity: return "drop_lowest_laxity";
    case ShedPolicy::kRejectEnroll: return "reject_enroll";
  }
  return "?";
}

const char* msg_category_name(int category) {
  switch (category) {
    case kMsgEnroll: return "enroll";
    case kMsgEnrollReply: return "enroll_reply";
    case kMsgUnlock: return "unlock";
    case kMsgValidate: return "validate";
    case kMsgValidateReply: return "validate_reply";
    case kMsgDispatch: return "dispatch";
    case kMsgDispatchAck: return "dispatch_ack";
    default: return "other";
  }
}

RtdsNode::RtdsNode(SiteId site, Simulator& sim, Transport& transport, Pcs pcs,
                   RtdsConfig cfg, NodeEnv& env)
    : site_(site),
      sim_(sim),
      transport_(transport),
      pcs_(std::move(pcs)),
      cfg_(cfg),
      env_(env),
      sched_(cfg.sched),
      // Per-site backoff-jitter stream, derived from the fault seed with a
      // golden-ratio odd multiplier so neighbouring sites decorrelate. Only
      // ever consumed on the retransmit path, so fault-free (and
      // retransmit-off) runs never draw from it.
      retry_rng_(cfg.fault_seed ^
                 (0x9e3779b97f4a7c15ULL * (std::uint64_t(site) + 1))) {
  RTDS_REQUIRE(pcs_.root() == site);
  if (cfg_.fault_tolerant) {
    lease_ = cfg_.lock_lease;
    if (lease_ <= 0.0) {
      // Auto lease: must outlast a full healthy protocol round — enroll
      // round trip + mapping + validate round trip + dispatch is at most
      // 5 eccentricities plus the mapper latency; 8 plus the slacks leaves
      // comfortable margin, so a lease expiry really means a fault.
      Time ecc = 0.0;
      for (const auto& m : pcs_.members()) ecc = std::max(ecc, m.delay);
      lease_ = 8.0 * ecc + cfg_.mapper_compute_time +
               2.0 * cfg_.enroll_timeout_slack +
               cfg_.protocol_overhead_slack + 1.0;
    }
  }
}

void RtdsNode::send(SiteId to, MessageBody payload, int category, JobId job,
                    double size_units) {
  RTDS_REQUIRE(to != site_);
  RTDS_CHECK_MSG(pcs_.contains(to),
                 "site " << site_ << " routing outside its PCS to " << to);
  // §12 hardening: every protocol message carries a per-(sender, receiver)
  // sequence so the receiver can drop network duplicates idempotently.
  // Retransmits re-enter send() and get a FRESH sequence — the dedup
  // window kills copies the *network* made, protocol-level idempotency
  // handles copies *we* made.
  std::visit(
      [&](auto& m) {
        if constexpr (requires { m.seq; }) {
          m.seq = ++send_seq_[to];
          if (auto* chk = env_.checker())
            chk->on_send_seq(site_, to, m.seq, sim_.now());
        }
      },
      payload);
  const std::size_t hops =
      transport_.send(site_, to, std::move(payload), category, size_units);
  env_.on_job_messages(job, hops);
}

// ---------------------------------------------------------------------------
// Arrival and initiator pipeline
// ---------------------------------------------------------------------------

void RtdsNode::submit(std::shared_ptr<const Job> job) {
  RTDS_REQUIRE(job != nullptr);
  RTDS_REQUIRE(job->dag.finalized());
  if (!alive_) {
    // An arrival at a dead site is lost — but it still needs a decision so
    // the run's accounting covers every arrival.
    record_site_down(*job, 1);
    return;
  }
  if (lock_.has_value()) {
    // kRejectEnroll refuses at the door: with the admission queue full the
    // arrival is shed before any admission work (even the local test) is
    // spent on it — the cheapest possible overload response.
    if (cfg_.admission_queue_cap > 0 &&
        cfg_.shed_policy == ShedPolicy::kRejectEnroll &&
        queue_.size() >= cfg_.admission_queue_cap) {
      record_shed(*job);
      return;
    }
    // Opportunistic local accept while locked (see class comment); jobs
    // that do not fit — or would break an outstanding endorsement — wait.
    if (!try_local_accept(job)) {
      RTDS_TRACE("site " << site_ << " queues job " << job->id << " (locked)");
      enqueue_bounded(std::move(job));
    }
    return;
  }
  begin(std::move(job));
}

void RtdsNode::enqueue_bounded(std::shared_ptr<const Job> job) {
  const std::size_t cap = cfg_.admission_queue_cap;
  if (cap == 0 || queue_.size() < cap) {
    if (auto* chk = env_.checker()) chk->on_queue_push(site_, sim_.now());
    queue_.push_back(std::move(job));
    return;
  }
  if (cfg_.shed_policy == ShedPolicy::kDropLowestLaxity) {
    // Victim = earliest absolute deadline among queued + incoming — among
    // contemporaries waiting on the same unlock, the earliest deadline has
    // the least slack left and is the least likely to still be
    // schedulable. Ties favour shedding the incoming job (strict compare),
    // keeping queue membership stable.
    std::size_t victim = queue_.size();  // sentinel: the incoming job
    Time earliest = job->deadline;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (time_lt(queue_[i]->deadline, earliest)) {
        earliest = queue_[i]->deadline;
        victim = i;
      }
    }
    if (victim < queue_.size()) {
      record_shed(*queue_[victim]);
      if (auto* chk = env_.checker()) {
        chk->on_queue_remove(site_, sim_.now());
        chk->on_queue_push(site_, sim_.now());
      }
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
      queue_.push_back(std::move(job));
      return;
    }
  }
  // kDropNewest — and kRejectEnroll jobs that slipped past the door check
  // because the queue filled after their local test, and the incoming job
  // losing the laxity comparison above: shed the arrival.
  record_shed(*job);
}

void RtdsNode::record_shed(const Job& job) {
  RTDS_TRACE("t=" << sim_.now() << " site " << site_ << " SHEDS job "
                  << job.id << " (" << to_string(cfg_.shed_policy) << ")");
  if (auto* chk = env_.checker()) chk->on_shed(site_, sim_.now());
  JobDecision d;
  d.job = job.id;
  d.initiator = site_;
  d.outcome = JobOutcome::kRejected;
  d.reject_reason = RejectReason::kShed;
  d.arrival = job.release;
  d.decision_time = sim_.now();
  d.deadline = job.deadline;
  d.task_count = job.dag.task_count();
  d.acs_size = 1;
  env_.on_job_decision(d);
}

void RtdsNode::start_next_job() {
  if (!alive_ || lock_.has_value() || queue_.empty()) return;
  auto job = queue_.front();
  queue_.erase(queue_.begin());
  if (auto* chk = env_.checker()) chk->on_queue_remove(site_, sim_.now());
  begin(std::move(job));
}

void RtdsNode::begin(std::shared_ptr<const Job> job) {
  const Time now = sim_.now();
  acquire_lock(site_, job->id);

  // §4 step 1 / §5: local guarantee test.
  if (try_local_accept(job)) {
    release_lock(site_, job->id);
    after_unlock();
    return;
  }

  // §4 step 2: build the ACS over the sphere.
  if (pcs_.size() <= 1) {
    Initiation init;
    init.job = job;
    conclude(job->id, init, JobOutcome::kRejected, RejectReason::kNoCandidates);
    release_lock(site_, job->id);
    after_unlock();
    return;
  }

  // Pre-enrollment gate (§9): skip the whole enroll/lock round when the
  // deadline is already unreachable.
  if (cfg_.enroll_gate != EnrollGate::kNone) {
    Time lower_bound = now + critical_path_length(job->dag);
    if (cfg_.enroll_gate == EnrollGate::kProtocolAware) {
      Time ecc = 0.0;
      for (const auto& m : pcs_.members()) ecc = std::max(ecc, m.delay);
      lower_bound += 3.0 * ecc + cfg_.mapper_compute_time;
    }
    if (time_gt(lower_bound, job->deadline)) {
      Initiation init;
      init.job = job;
      conclude(job->id, init, JobOutcome::kRejected, RejectReason::kGated);
      release_lock(site_, job->id);
      after_unlock();
      return;
    }
  }
  auto [it, inserted] = active_.emplace(job->id, Initiation{});
  RTDS_CHECK(inserted);
  it->second.job = std::move(job);
  begin_acs_construction(it->second);
}

void RtdsNode::begin_acs_construction(Initiation& init) {
  const JobId job = init.job->id;
  init.phase = Initiation::Phase::kEnrolling;
  init.expected_replies = pcs_.size() - 1;
  RTDS_COUNT("protocol.rounds");
  if (auto* tr = obs::tracer()) {
    // One nestable async track per (initiator round, job): the outer
    // "round" span closes in conclude(); the phase spans tile its inside.
    tr->begin("protocol", "round", sim_.now(), site_, job);
    tr->begin("protocol", "enroll", sim_.now(), site_, job,
              init.expected_replies);
  }
  RTDS_TRACE("site " << site_ << " enrolls ACS for job " << job);
  Time max_delay = 0.0;
  for (const auto& m : pcs_.members()) {
    if (m.site == site_) continue;
    max_delay = std::max(max_delay, m.delay);
    const EnrollRequest req{job, init.job->deadline};
    send(m.site, req, kMsgEnroll, job);
    if (retransmit_enabled())
      arm_retry(job, m.site, kMsgEnroll, MessageBody(req), 1.0,
                2.0 * m.delay + cfg_.enroll_timeout_slack);
  }
  // Under faults the timer is armed for *both* enrollment policies: a Nack
  // normally guarantees a reply from every member, but a dead member (or a
  // dropped request/reply) answers nothing, and the round must still end.
  if (cfg_.enroll_policy == EnrollPolicy::kTimeout || cfg_.fault_tolerant) {
    Time timeout = 2.0 * max_delay + cfg_.enroll_timeout_slack;
    // With retransmissions armed the round must outlast the whole backoff
    // schedule (rto + 2rto + ... ~= rto * (2^(tries+1) - 1) plus jitter),
    // or the timeout would fire while resends are still recovering replies.
    if (retransmit_enabled())
      timeout *= static_cast<double>(1 << (cfg_.retransmit_tries + 1));
    sim_.schedule_in(timeout, [this, job]() { on_enroll_timeout(job); });
    if (sim_.recording())
      sim_.annotate(
          node_record(EventRecord::Kind::kEnrollTimeout, site_, job));
  }
}

void RtdsNode::on_enroll_reply(SiteId from, const EnrollReply& msg) {
  cancel_retry(msg.job, from);  // the enroll got through; stop resending
  const auto it = active_.find(msg.job);
  if (it == active_.end() ||
      it->second.phase != Initiation::Phase::kEnrolling) {
    // Stale ack: the job concluded (or left enrollment) before this reply
    // arrived — possible under the kTimeout policy when a site processed a
    // buffered enrollment after our timer fired. Release it immediately —
    // UNLESS the site already counted into the ACS (a duplicate reply bred
    // by a retransmitted request): then the round in flight owns its lock
    // and will resolve it with a dispatch or unlock of its own.
    const bool in_acs =
        it != active_.end() &&
        std::find(it->second.acs.begin(), it->second.acs.end(), from) !=
            it->second.acs.end();
    if (msg.accepted && !in_acs)
      send(from, UnlockMsg{msg.job}, kMsgUnlock, msg.job);
    return;
  }
  Initiation& init = it->second;
  if (cfg_.fault_tolerant) {
    // Duplicate replies (each retransmit answer carries a fresh sequence,
    // so the dedup window cannot catch them) must not double-count.
    if (std::find(init.repliers.begin(), init.repliers.end(), from) !=
        init.repliers.end())
      return;
    init.repliers.push_back(from);
  }
  ++init.received_replies;
  if (msg.accepted) {
    init.acs.push_back(from);
    init.surplus_of.emplace_back(from, msg.surplus);
  }
  if (init.received_replies == init.expected_replies) {
    init.phase = Initiation::Phase::kMapping;
    if (auto* tr = obs::tracer()) {
      tr->end("protocol", "enroll", sim_.now(), site_, msg.job,
              init.acs.size());
      tr->begin("protocol", "map", sim_.now(), site_, msg.job);
    }
    sim_.schedule_in(cfg_.mapper_compute_time,
                     [this, job = msg.job]() { run_mapper(job); });
    if (sim_.recording())
      sim_.annotate(node_record(EventRecord::Kind::kMapper, site_, msg.job));
  }
}

void RtdsNode::on_enroll_timeout(JobId job) {
  const auto it = active_.find(job);
  if (it == active_.end() || it->second.phase != Initiation::Phase::kEnrolling)
    return;  // already advanced (all replies arrived) or concluded
  it->second.timed_out = true;
  it->second.phase = Initiation::Phase::kMapping;
  RTDS_COUNT("protocol.enroll.timeouts");
  if (auto* tr = obs::tracer()) {
    tr->end("protocol", "enroll", sim_.now(), site_, job,
            it->second.acs.size());
    tr->begin("protocol", "map", sim_.now(), site_, job);
  }
  sim_.schedule_in(cfg_.mapper_compute_time,
                   [this, job]() { run_mapper(job); });
  if (sim_.recording())
    sim_.annotate(node_record(EventRecord::Kind::kMapper, site_, job));
}

void RtdsNode::run_mapper(JobId job) {
  const auto it = active_.find(job);
  if (it == active_.end()) {
    // Only a crash can clear an initiation between the enrollment round
    // and its scheduled mapper event.
    RTDS_CHECK_MSG(cfg_.fault_tolerant, "mapper event for unknown job " << job);
    return;
  }
  Initiation& init = it->second;
  if (auto* tr = obs::tracer())
    tr->end("protocol", "map", sim_.now(), site_, job);

  // The initiator is always an ACS member (§13 "local knowledge of k").
  init.acs.push_back(site_);
  init.surplus_of.emplace_back(site_, surplus_for(init.job->deadline));
  std::sort(init.acs.begin(), init.acs.end());
  init.acs_diameter = pcs_.delay_diameter_of(init.acs);

  // Logical processors: ACS surpluses in descending order (§9), excluding
  // sites too busy to be worth a logical slot. Track which entry is the
  // initiator itself for the §13 local-knowledge option.
  std::vector<std::pair<double, SiteId>> ranked;
  for (const auto& [s, surplus] : init.surplus_of)
    if (surplus >= cfg_.min_surplus) ranked.emplace_back(surplus, s);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<double> surpluses;
  std::size_t self_index = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    surpluses.push_back(ranked[i].first);
    if (ranked[i].second == site_) self_index = i;
  }
  if (surpluses.empty()) {
    reject(init, RejectReason::kNoCandidates);
    return;
  }

  // §13: the release the mapper plans for is advanced by the remaining
  // protocol overhead — validation round trip plus dispatch. Each of those
  // is an initiator<->member leg, so the initiator's ACS *eccentricity* is
  // the sound over-estimate (the diameter ω still bounds task-to-task
  // communication inside the mapping).
  Time ecc = 0.0;
  for (SiteId s : init.acs)
    if (s != site_) ecc = std::max(ecc, pcs_.delay(site_, s));
  const Time r_eff =
      std::max(init.job->release,
               sim_.now() + cfg_.protocol_overhead_factor * 3.0 * ecc +
                   cfg_.protocol_overhead_slack);
  if (time_ge(r_eff, init.job->deadline)) {
    reject(init, RejectReason::kMapperCaseI);
    return;
  }

  MapperInput input;
  input.dag = &init.job->dag;
  input.release = r_eff;
  input.deadline = init.job->deadline;
  input.surpluses = std::move(surpluses);
  input.comm_diameter = init.acs_diameter;
  if (cfg_.initiator_local_knowledge && self_index < ranked.size()) {
    input.initiator_plan = &sched_.plan();
    input.initiator_index = self_index;
    input.initiator_power = cfg_.sched.computing_power;
  }
  AdjustmentCase failure = AdjustmentCase::kReject;
  auto mapping = build_trial_mapping(input, cfg_.mapper, &failure);
  if (!mapping) {
    reject(init, failure == AdjustmentCase::kReject
                     ? RejectReason::kMapperCaseI
                     : RejectReason::kMapperWindows);
    return;
  }
  RTDS_TRACE("site " << site_ << " mapped job " << job << " onto "
                     << mapping->used_processors << " logical procs, case "
                     << to_string(mapping->adjustment));
  init.mapping = std::make_shared<const TrialMapping>(*std::move(mapping));
  init.phase = Initiation::Phase::kValidating;
  begin_validation(init);
}

void RtdsNode::begin_validation(Initiation& init) {
  const JobId job = init.job->id;
  init.validate_expected = init.acs.size();
  if (auto* tr = obs::tracer())
    tr->begin("protocol", "validate", sim_.now(), site_, job,
              init.validate_expected);
  for (SiteId s : init.acs) {
    if (s == site_) {
      init.endorsements.emplace_back(
          site_, endorsable_processors(*init.job, *init.mapping));
      endorsement_ = OutstandingEndorsement{job, init.job, init.mapping,
                                            init.endorsements.back().second};
    } else {
      // Validation ships the whole Trial-Mapping (task windows): §13 notes
      // that task-code-sized messages cost real transfer time.
      const ValidateRequest req{job, init.job, init.mapping};
      const double size = 1.0 + double(init.job->dag.task_count());
      send(s, req, kMsgValidate, job, size);
      if (retransmit_enabled())
        arm_retry(job, s, kMsgValidate, MessageBody(req), size,
                  2.0 * pcs_.delay(site_, s) + cfg_.enroll_timeout_slack);
    }
  }
  if (init.endorsements.size() == init.validate_expected) {
    finish_matching(init);  // degenerate ACS == {k}
    return;
  }
  if (cfg_.fault_tolerant) {
    // A dead member (or a lost request/reply) never answers; close the
    // round after a validation round trip plus the configured slacks.
    Time max_delay = 0.0;
    for (SiteId s : init.acs)
      if (s != site_) max_delay = std::max(max_delay, pcs_.delay(site_, s));
    Time timeout = 2.0 * max_delay + cfg_.enroll_timeout_slack +
                   cfg_.protocol_overhead_slack;
    // Outlast the retransmit backoff schedule (see begin_acs_construction).
    if (retransmit_enabled())
      timeout *= static_cast<double>(1 << (cfg_.retransmit_tries + 1));
    sim_.schedule_in(timeout, [this, job]() { on_validate_timeout(job); });
    if (sim_.recording())
      sim_.annotate(
          node_record(EventRecord::Kind::kValidateTimeout, site_, job));
  }
}

void RtdsNode::on_validate_timeout(JobId job) {
  const auto it = active_.find(job);
  if (it == active_.end() || it->second.phase != Initiation::Phase::kValidating)
    return;  // every reply arrived (or the site crashed) first
  Initiation& init = it->second;
  init.timed_out = true;
  RTDS_COUNT("protocol.validate.timeouts");
  // Members that never answered endorse nothing; the maximum coupling
  // decides what survives without them (often everything — their logical
  // processors simply land on the members that did answer).
  for (SiteId s : init.acs) {
    const bool answered =
        std::any_of(init.endorsements.begin(), init.endorsements.end(),
                    [&](const auto& e) { return e.first == s; });
    if (!answered) init.endorsements.emplace_back(s, std::vector<std::uint32_t>{});
  }
  RTDS_TRACE("t=" << sim_.now() << " site " << site_ << " job " << job
                  << ": validation timed out, matching over "
                  << init.endorsements.size() << " endorsements");
  finish_matching(init);
}

void RtdsNode::on_validate_reply(SiteId from, const ValidateReply& msg) {
  const auto it = active_.find(msg.job);
  if (it == active_.end() ||
      it->second.phase != Initiation::Phase::kValidating) {
    // Possible only under faults: a slow reply landing after the
    // validation timeout resolved the round (the conclude already sent
    // `from` its dispatch or unlock).
    RTDS_CHECK_MSG(cfg_.fault_tolerant,
                   "validate reply for unknown job " << msg.job);
    return;
  }
  cancel_retry(msg.job, from);  // the validate got through; stop resending
  Initiation& init = it->second;
  if (cfg_.fault_tolerant &&
      std::any_of(init.endorsements.begin(), init.endorsements.end(),
                  [&](const auto& e) { return e.first == from; }))
    return;  // duplicate reply to a retransmitted request
  init.endorsements.emplace_back(from, msg.endorsable);
  if (init.endorsements.size() == init.validate_expected)
    finish_matching(init);
}

void RtdsNode::finish_matching(Initiation& init) {
  const JobId job = init.job->id;
  const auto& acs = init.acs;
  const auto u_count = init.mapping->used_processors;
  if (auto* tr = obs::tracer())
    tr->end("protocol", "validate", sim_.now(), site_, job,
            init.endorsements.size());

  // §10: maximum coupling between logical processors and ACS sites.
  BipartiteGraph graph(u_count, acs.size());
  for (std::size_t ri = 0; ri < acs.size(); ++ri) {
    const auto endorse_it =
        std::find_if(init.endorsements.begin(), init.endorsements.end(),
                     [&](const auto& e) { return e.first == acs[ri]; });
    RTDS_CHECK(endorse_it != init.endorsements.end());
    for (std::uint32_t u : endorse_it->second) {
      RTDS_CHECK(u < u_count);
      graph.add_edge(u, ri);
    }
  }
  const MatchingResult match = max_matching_hopcroft_karp(graph);
  RTDS_TRACE("t=" << sim_.now() << " site " << site_ << " job " << job
                  << ": maximum coupling " << match.size << " of |U|="
                  << u_count << " over |ACS|=" << acs.size());
  if (!match.perfect_on_left()) {
    RTDS_TRACE("site " << site_ << " job " << job << " coupling "
                       << match.size << " < " << u_count << ": reject");
    reject(init, RejectReason::kMatchingFailed);
    return;
  }

  // §11: dispatch the permutation + task codes; uninvolved members unlock.
  init.phase = Initiation::Phase::kDone;
  std::uint32_t self_logical = kNoLogical;
  for (std::size_t ri = 0; ri < acs.size(); ++ri) {
    const auto logical = match.match_of_right[ri] == kUnmatched
                             ? kNoLogical
                             : static_cast<std::uint32_t>(match.match_of_right[ri]);
    if (acs[ri] == site_) {
      self_logical = logical;
    } else {
      const DispatchMsg dm{job, logical, init.job, init.mapping};
      const double size = 1.0 + double(init.job->dag.task_count());
      send(acs[ri], dm, kMsgDispatch, job, size);
      // Dispatch retries survive conclude() (the guarantee is already
      // given); they die on the member's DispatchAck or, exhausted, report
      // a dispatch failure for assignments that carried real work.
      if (retransmit_enabled())
        arm_retry(job, acs[ri], kMsgDispatch, MessageBody(dm), size,
                  2.0 * pcs_.delay(site_, acs[ri]) +
                      cfg_.enroll_timeout_slack);
    }
  }
  if (self_logical != kNoLogical)
    commit_logical(*init.job, *init.mapping, self_logical);

  conclude(job, init, JobOutcome::kAcceptedRemote, RejectReason::kNone);
  release_lock(site_, job);
  after_unlock();
}

void RtdsNode::reject(Initiation& init, RejectReason reason) {
  const JobId job = init.job->id;
  for (SiteId s : init.acs)
    if (s != site_) send(s, UnlockMsg{job}, kMsgUnlock, job);
  conclude(job, init, JobOutcome::kRejected, reason);
  release_lock(site_, job);
  after_unlock();
}

void RtdsNode::conclude(JobId job, const Initiation& init, JobOutcome outcome,
                        RejectReason reason) {
  // Members that never answered enrollment or validation must not be
  // re-asked once the round is decided; in-flight dispatch retries stay.
  cancel_pre_dispatch_retries(job);
  JobDecision d;
  d.job = job;
  d.initiator = site_;
  d.outcome = outcome;
  d.reject_reason = reason;
  d.arrival = init.job->release;
  d.decision_time = sim_.now();
  d.deadline = init.job->deadline;
  d.task_count = init.job->dag.task_count();
  d.acs_size = std::max<std::size_t>(1, init.acs.size());
  d.adjustment_case =
      init.mapping ? static_cast<int>(init.mapping->adjustment) : 0;
  d.fault_recovered = cfg_.fault_tolerant && init.timed_out;
  // The outer "round" span exists only for initiations that enrolled —
  // expected_replies > 0 is exactly the begin_acs_construction postcondition.
  if (init.expected_replies > 0)
    if (auto* tr = obs::tracer())
      tr->end("protocol", "round", sim_.now(), site_, job,
              static_cast<std::uint64_t>(outcome));
  env_.on_job_decision(d);
  active_.erase(job);
}

// ---------------------------------------------------------------------------
// Fault injection (DESIGN.md §9)
// ---------------------------------------------------------------------------

void RtdsNode::crash() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;  // committed reservations of this life never complete
  // Committed-but-unfinished work dies with the plan.
  for (const auto& [job, pending] : pending_completions_)
    if (pending > 0) env_.on_job_lost(job, site_);
  pending_completions_.clear();
  // Every job this site still owed a decision gets one, so the run's
  // accounting covers every arrival even across crashes.
  for (const auto& [id, init] : active_)
    record_site_down(*init.job, init.acs.size());
  active_.clear();
  for (const auto& job : queue_) {
    record_site_down(*job, 1);
    if (auto* chk = env_.checker()) chk->on_queue_remove(site_, sim_.now());
  }
  queue_.clear();
  buffered_enrolls_.clear();
  // Locks held *by* this site's initiations resolve via the members'
  // leases; a lock held *on* this site dies here.
  if (fault::injected_bug() != fault::InjectedBug::kCrashKeepsLock)
    lock_.reset();
  endorsement_.reset();
  ++lock_seq_;  // cancel any armed lease
  // An in-flight dispatch retry carries guaranteed work whose delivery this
  // crash forfeits: the retry timers die here (they no-op against the empty
  // map), so the exhaustion path would never declare the loss. Declare it
  // now, exactly as exhaustion would — otherwise the job stays marked
  // healthy with tasks that can never run (found by rtds_fuzz).
  for (const auto& [key, r] : retries_) {
    const auto* dm = std::get_if<DispatchMsg>(&r.payload);
    if (dm != nullptr && dm->logical != kNoLogical)
      env_.on_dispatch_failure(key.first, key.second);
  }
  retries_.clear();
  // send_seq_ / recv_window_ deliberately survive: sequences must stay
  // monotone per (sender, receiver) across reincarnations, or a recovered
  // site's fresh messages would look like replays to its peers.
  sched_ = LocalScheduler(cfg_.sched);
  RTDS_TRACE("t=" << sim_.now() << " site " << site_ << " CRASHED");
}

void RtdsNode::record_site_down(const Job& job, std::size_t acs_size) {
  JobDecision d;
  d.job = job.id;
  d.initiator = site_;
  d.outcome = JobOutcome::kRejected;
  d.reject_reason = RejectReason::kSiteDown;
  d.arrival = job.release;
  d.decision_time = sim_.now();
  d.deadline = job.deadline;
  d.task_count = job.dag.task_count();
  d.acs_size = std::max<std::size_t>(1, acs_size);
  env_.on_job_decision(d);
}

void RtdsNode::recover() {
  if (alive_) return;
  alive_ = true;  // the plan is already empty (reset at crash)
  RTDS_TRACE("t=" << sim_.now() << " site " << site_ << " recovers");
}

// ---------------------------------------------------------------------------
// Responder side
// ---------------------------------------------------------------------------

void RtdsNode::on_message(SiteId from, const MessageBody& payload) {
  // The transport drops deliveries to dead sites; this guards the
  // scripted-plan edge where a crash and a delivery share a timestamp.
  if (!alive_) return;
  // §12 dedup: drop sequences this window has already accepted. On a
  // faultless network sequences arrive strictly increasing, so the window
  // accepts everything and the run is bit-identical to the unhardened
  // protocol (pinned by tests/chaos_test.cpp). seq 0 = unstamped
  // (sequence-less message types report 0 here).
  const std::uint64_t seq = std::visit(
      [](const auto& m) -> std::uint64_t {
        if constexpr (requires { m.seq; }) return m.seq;
        return 0;
      },
      payload);
  if (seq != 0) {
    bool fresh = recv_window_[from].accept(seq);
    if (fresh &&
        fault::injected_bug() == fault::InjectedBug::kDedupFalsePositive &&
        seq % 8 == 0)
      fresh = false;  // injected boundary off-by-one (fault/bugs.hpp)
    if (!fresh) {
      RTDS_COUNT("protocol.dedup_dropped");
      RTDS_TRACE("t=" << sim_.now() << " site " << site_
                      << " drops duplicate seq " << seq << " from " << from);
      return;
    }
  }
  if (const auto* enroll = std::get_if<EnrollRequest>(&payload)) {
    on_enroll_request(from, *enroll);
  } else if (const auto* reply = std::get_if<EnrollReply>(&payload)) {
    on_enroll_reply(from, *reply);
  } else if (const auto* unlock = std::get_if<UnlockMsg>(&payload)) {
    on_unlock(from, *unlock);
  } else if (const auto* validate = std::get_if<ValidateRequest>(&payload)) {
    on_validate_request(from, *validate);
  } else if (const auto* vreply = std::get_if<ValidateReply>(&payload)) {
    on_validate_reply(from, *vreply);
  } else if (const auto* dispatch = std::get_if<DispatchMsg>(&payload)) {
    on_dispatch(from, *dispatch);
  } else if (const auto* ack = std::get_if<DispatchAck>(&payload)) {
    on_dispatch_ack(from, *ack);
  } else {
    RTDS_CHECK_MSG(false, "site " << site_ << " received unknown payload");
  }
}

void RtdsNode::on_enroll_request(SiteId from, const EnrollRequest& msg) {
  if (cfg_.fault_tolerant && lock_matches(from, msg.job)) {
    // Retransmit of the very round we are locked on (our reply was lost or
    // is still in flight): answer idempotently with the current surplus
    // instead of Nack-ing our own initiator.
    sched_.garbage_collect(sim_.now());
    send(from, EnrollReply{msg.job, true, surplus_for(msg.deadline)},
         kMsgEnrollReply, msg.job);
    return;
  }
  if (lock_.has_value()) {
    if (cfg_.enroll_policy == EnrollPolicy::kNack) {
      send(from, EnrollReply{msg.job, false, 0.0}, kMsgEnrollReply, msg.job);
    } else {
      // Faithful §8 semantics: ignore (buffer) until our unlock arrives.
      // A retransmitted request must not buffer twice — it would make
      // after_unlock() lock this site onto the same round back to back.
      if (cfg_.fault_tolerant) {
        for (const auto& [f, r] : buffered_enrolls_)
          if (f == from && r.job == msg.job) return;
      }
      buffered_enrolls_.emplace_back(from, msg);
    }
    return;
  }
  acquire_lock(from, msg.job);
  sched_.garbage_collect(sim_.now());
  const double surplus = surplus_for(msg.deadline);
  RTDS_TRACE("t=" << sim_.now() << " site " << site_ << " enrolled by "
                  << from << " for job " << msg.job << " (surplus "
                  << surplus << ")");
  send(from, EnrollReply{msg.job, true, surplus}, kMsgEnrollReply, msg.job);
}

void RtdsNode::on_validate_request(SiteId from, const ValidateRequest& msg) {
  if (cfg_.fault_tolerant && lock_matches(from, msg.job) &&
      endorsement_.has_value() && endorsement_->job == msg.job) {
    // Retransmit of a request we already endorsed (the reply was lost or
    // is in flight): repeat the STORED endorsement verbatim — recomputing
    // could promise a different set than the one this site is holding.
    send(from, ValidateReply{msg.job, endorsement_->endorsed},
         kMsgValidateReply, msg.job);
    return;
  }
  if (!lock_matches(from, msg.job)) {
    // The lease released this lock (the enroll reply or this request was
    // slow/lost, or we crashed and recovered in between). Stay silent; the
    // initiator's validation timeout covers us.
    RTDS_CHECK_MSG(cfg_.fault_tolerant,
                   "validate request while not locked by " << from);
    return;
  }
  auto endorsed = endorsable_processors(*msg.job_data, *msg.mapping);
  RTDS_TRACE("t=" << sim_.now() << " site " << site_ << " validates job "
                  << msg.job << ": endorses " << endorsed.size() << "/"
                  << msg.mapping->used_processors << " logical procs");
  endorsement_ = OutstandingEndorsement{msg.job, msg.job_data, msg.mapping,
                                        endorsed};
  send(from, ValidateReply{msg.job, std::move(endorsed)}, kMsgValidateReply,
       msg.job);
}

void RtdsNode::on_dispatch(SiteId from, const DispatchMsg& msg) {
  if (retransmit_enabled()) {
    if (recently_dispatched(msg.job)) {
      // The original was already processed and only the ack was lost:
      // re-ack, never re-commit (and never re-count a dispatch failure).
      send(from, DispatchAck{msg.job}, kMsgDispatchAck, msg.job);
      return;
    }
    remember_dispatch(msg.job);
    send(from, DispatchAck{msg.job}, kMsgDispatchAck, msg.job);
  }
  if (!lock_matches(from, msg.job)) {
    // Our lease expired before the (slow) dispatch arrived, so the
    // endorsement it relies on is gone. An actual assignment is a failed
    // dispatch; a mere unlock marker needs nothing.
    RTDS_CHECK_MSG(cfg_.fault_tolerant,
                   "dispatch while not locked by " << from);
    if (msg.logical != kNoLogical) env_.on_dispatch_failure(msg.job, site_);
    return;
  }
  if (msg.logical != kNoLogical) {
    RTDS_TRACE("t=" << sim_.now() << " site " << site_
                    << " executes logical proc " << msg.logical << " of job "
                    << msg.job);
    commit_logical(*msg.job_data, *msg.mapping, msg.logical);
  } else {
    RTDS_TRACE("t=" << sim_.now() << " site " << site_
                    << " not involved in job " << msg.job << ": unlocking");
  }
  release_lock(from, msg.job);
  after_unlock();
}

void RtdsNode::on_unlock(SiteId from, const UnlockMsg& msg) {
  if (cfg_.fault_tolerant && !lock_matches(from, msg.job))
    return;  // the lease already released it (maybe we re-locked since)
  release_lock(from, msg.job);
  after_unlock();
}

void RtdsNode::on_dispatch_ack(SiteId from, const DispatchAck& msg) {
  // Receipt for a dispatch we sent (only ever emitted by peers running
  // with retransmit enabled): stop resending it.
  cancel_retry(msg.job, from);
}

// ---------------------------------------------------------------------------
// §12 hardening: ack + retransmit with capped exponential backoff
// ---------------------------------------------------------------------------

void RtdsNode::arm_retry(JobId job, SiteId to, int category,
                         MessageBody payload, double size_units, Time rto) {
  Retry r;
  r.payload = std::move(payload);
  r.category = category;
  r.size_units = size_units;
  r.gen = ++retry_gen_;
  // One slot per (job, peer): the protocol phases are sequential, so a
  // validate (or dispatch) template supersedes the peer's enroll (or
  // validate) entry, and the superseded timer no-ops on its stale gen.
  retries_[{job, to}] = std::move(r);
  const Time next = rto + retry_rng_.uniform(0.0, 0.25 * rto);
  sim_.schedule_in(next, [this, job, to, gen = retry_gen_, rto]() {
    on_retry_timer(job, to, gen, rto);
  });
  if (sim_.recording()) {
    EventRecord rec = node_record(EventRecord::Kind::kRetryTimer, site_, job);
    rec.peer = to;
    rec.a = retry_gen_;
    rec.x = rto;
    sim_.annotate(std::move(rec));
  }
}

void RtdsNode::on_retry_timer(JobId job, SiteId to, std::uint64_t gen,
                              Time rto) {
  if (!alive_) return;
  const auto it = retries_.find({job, to});
  if (it == retries_.end() || it->second.gen != gen)
    return;  // answered, superseded, or cancelled since this timer was set
  Retry& r = it->second;
  if (r.attempts >= cfg_.retransmit_tries) {
    // Backoff exhausted: the peer is unreachable (dead, partitioned away,
    // or every copy was lost). An exhausted dispatch that carried real
    // work is a failed dispatch — the guarantee was already given and the
    // work will never run there; everything else just stops.
    const auto* dm = std::get_if<DispatchMsg>(&r.payload);
    const bool lost_work = dm != nullptr && dm->logical != kNoLogical;
    retries_.erase(it);
    RTDS_COUNT("protocol.retransmit.exhausted");
    if (lost_work) env_.on_dispatch_failure(job, to);
    return;
  }
  ++r.attempts;
  RTDS_COUNT("protocol.retransmits");
  env_.on_retransmit(job);
  RTDS_TRACE("t=" << sim_.now() << " site " << site_ << " retransmits "
                  << msg_category_name(r.category) << " of job " << job
                  << " to " << to << " (attempt " << r.attempts << ")");
  // Re-enters send(), so the copy carries a FRESH sequence: peers must
  // process it even though the dedup window saw the original's sequence.
  send(to, MessageBody(r.payload), r.category, job, r.size_units);
  // Capped exponential backoff with seeded jitter (deterministic per run).
  const Time next_rto = 2.0 * rto;
  const Time next = next_rto + retry_rng_.uniform(0.0, 0.25 * next_rto);
  sim_.schedule_in(next, [this, job, to, gen, next_rto]() {
    on_retry_timer(job, to, gen, next_rto);
  });
  if (sim_.recording()) {
    EventRecord rec = node_record(EventRecord::Kind::kRetryTimer, site_, job);
    rec.peer = to;
    rec.a = gen;
    rec.x = next_rto;
    sim_.annotate(std::move(rec));
  }
}

void RtdsNode::cancel_retry(JobId job, SiteId to) {
  if (retries_.empty()) return;  // fast path: fault-free runs
  retries_.erase({job, to});
}

void RtdsNode::cancel_pre_dispatch_retries(JobId job) {
  if (retries_.empty()) return;
  for (auto it = retries_.lower_bound({job, 0});
       it != retries_.end() && it->first.first == job;) {
    if (std::get_if<DispatchMsg>(&it->second.payload) == nullptr)
      it = retries_.erase(it);
    else
      ++it;
  }
}

bool RtdsNode::recently_dispatched(JobId job) const {
  const std::size_t n =
      std::min(recent_dispatch_count_, recent_dispatch_.size());
  for (std::size_t i = 0; i < n; ++i)
    if (recent_dispatch_[i] == job) return true;
  return false;
}

void RtdsNode::remember_dispatch(JobId job) {
  recent_dispatch_[recent_dispatch_count_ % recent_dispatch_.size()] = job;
  ++recent_dispatch_count_;
}

bool RtdsNode::try_local_accept(const std::shared_ptr<const Job>& job) {
  const Time now = sim_.now();
  sched_.garbage_collect(now);  // safe: only drops finished reservations
  const Time earliest = std::max(now, job->release);

  // Trial on a copy so a failed endorsement re-check leaves no trace.
  LocalScheduler trial = sched_;
  const auto placements = trial.try_accept_dag_local(*job, earliest);
  if (!placements) return false;
  if (endorsement_.has_value()) {
    for (std::uint32_t u : endorsement_->endorsed) {
      const auto tasks = endorsement_->mapping->tasks_of_span(u);
      if (!trial.test_windowed_feasible(tasks)) return false;
    }
  }
  sched_ = std::move(trial);
  RTDS_TRACE("site " << site_ << " accepts job " << job->id << " locally");

  // Completion notifications (one per task: local placements never split).
  for (const auto& p : *placements) schedule_completion(job->id, p.task, p.end);
  JobDecision d;
  d.job = job->id;
  d.initiator = site_;
  d.outcome = JobOutcome::kAcceptedLocal;
  d.arrival = job->release;
  d.decision_time = now;
  d.deadline = job->deadline;
  d.task_count = job->dag.task_count();
  d.acs_size = 1;
  env_.on_job_decision(d);
  return true;
}

double RtdsNode::surplus_for(Time deadline) const {
  const Time now = sim_.now();
  if (cfg_.job_window_surplus && time_gt(deadline, now))
    return sched_.plan().surplus(now, deadline - now);
  return sched_.surplus(now);
}

std::vector<std::uint32_t> RtdsNode::endorsable_processors(
    const Job& job, const TrialMapping& m) const {
  (void)job;
  std::vector<std::uint32_t> result;
  for (std::uint32_t u = 0; u < m.used_processors; ++u) {
    const auto tasks = m.tasks_of_span(u);
    RTDS_CHECK(!tasks.empty());
    if (sched_.test_windowed_feasible(tasks)) result.push_back(u);
  }
  return result;
}

void RtdsNode::commit_logical(const Job& job, const TrialMapping& m,
                              std::uint32_t u) {
  // Mutable stack copy of the logical processor's task windows.
  (void)job;
  InlineVec<WindowedTask, 32> task_buf;
  for (const auto& t : m.tasks_of_span(u)) task_buf.push_back(t);
  const std::span<WindowedTask> tasks{task_buf.begin(), task_buf.size()};
  // Execution cannot start in the past: clamp releases to now. Under the
  // ideal transport the mapper's protocol charge guarantees r(t) >= now, so
  // the clamp is a no-op; under contention it may bite.
  const Time now = sim_.now();
  bool clamped = false;
  for (auto& t : tasks) {
    if (time_lt(t.release, now)) {
      t.release = now;
      clamped = true;
    }
  }
  const auto placements = sched_.test_windowed(tasks);
  if (!placements.has_value()) {
    // Possible only if the clamp tightened a window, i.e. the dispatch
    // arrived after the planned release — the transport's real latency
    // exceeded the protocol over-estimate. Never happens under the ideal
    // faultless transport (then it would be a protocol bug, caught below);
    // under faults a lease expiry may also have let local work overwrite
    // the endorsement, with no clamp involved.
    RTDS_CHECK_MSG(clamped || cfg_.fault_tolerant,
                   "site " << site_ << " cannot honour endorsed logical proc "
                           << u << " of job " << job.id);
    env_.on_dispatch_failure(job.id, site_);
    return;
  }
  sched_.commit(job.id, tasks, *placements);

  // Completion notification at the *last* segment end of each task
  // (preemptive placements may split a task into several segments). The
  // task set is tiny and `tasks` already enumerates it in ascending id
  // order, so a per-task max scan replaces the old std::map.
  for (const auto& t : tasks) {
    Time end = 0.0;
    for (const auto& p : *placements)
      if (p.task == t.task) end = std::max(end, p.end);
    schedule_completion(job.id, t.task, end);
  }
}

void RtdsNode::schedule_completion(JobId job, TaskId task, Time end) {
  if (cfg_.fault_tolerant) ++pending_completions_[job];
  sim_.schedule_at(end, [this, job, task, end, ep = epoch_]() {
    fire_completion(job, task, end, ep);
  });
  if (sim_.recording()) {
    EventRecord rec = node_record(EventRecord::Kind::kCompletion, site_, job);
    rec.task = task;
    rec.x = end;
    rec.a = epoch_;
    sim_.annotate(std::move(rec));
  }
}

void RtdsNode::fire_completion(JobId job, TaskId task, Time end,
                               std::uint64_t ep) {
  if (ep != epoch_) return;  // scheduled by a previous life; work lost
  if (cfg_.fault_tolerant) {
    const auto it = pending_completions_.find(job);
    RTDS_CHECK(it != pending_completions_.end() && it->second > 0);
    if (--it->second == 0) pending_completions_.erase(it);
  }
  env_.on_task_complete(job, task, site_, end);
}

// ---------------------------------------------------------------------------
// Locking
// ---------------------------------------------------------------------------

void RtdsNode::acquire_lock(SiteId initiator, JobId job) {
  RTDS_CHECK_MSG(!lock_.has_value(), "site " << site_ << " already locked");
  lock_ = Lock{initiator, job};
  ++lock_seq_;
  // Responder locks lease out under faults: the initiator may die (or its
  // dispatch/unlock may be lost) and must not freeze this site forever.
  // The initiator's own lock needs no lease — it resolves synchronously
  // with the initiation, and a crash clears it.
  if (cfg_.fault_tolerant && initiator != site_) {
    sim_.schedule_in(lease_,
                     [this, seq = lock_seq_]() { on_lease_expired(seq); });
    if (sim_.recording()) {
      EventRecord rec = node_record(EventRecord::Kind::kLeaseExpiry, site_);
      rec.a = lock_seq_;
      sim_.annotate(std::move(rec));
    }
  }
}

void RtdsNode::on_lease_expired(std::uint64_t seq) {
  if (!alive_ || !lock_.has_value() || seq != lock_seq_) return;
  RTDS_TRACE("t=" << sim_.now() << " site " << site_
                  << " lease expires on lock (" << lock_->initiator << ", "
                  << lock_->job << ")");
  lock_.reset();
  endorsement_.reset();
  after_unlock();
}

void RtdsNode::release_lock(SiteId initiator, JobId job) {
  RTDS_CHECK_MSG(lock_.has_value(), "site " << site_ << " not locked");
  RTDS_CHECK_MSG(lock_->initiator == initiator && lock_->job == job,
                 "unlock mismatch at site " << site_ << ": held ("
                                            << lock_->initiator << ", "
                                            << lock_->job << "), got ("
                                            << initiator << ", " << job << ")");
  lock_.reset();
  endorsement_.reset();
}

void RtdsNode::after_unlock() {
  // kTimeout policy: a buffered enrollment is served first — the site locks
  // onto that initiator and acks late (the initiator unlocks it right back
  // if the job already concluded).
  if (!lock_.has_value() && !buffered_enrolls_.empty()) {
    auto [from, req] = buffered_enrolls_.front();
    buffered_enrolls_.erase(buffered_enrolls_.begin());
    acquire_lock(from, req.job);
    sched_.garbage_collect(sim_.now());
    send(from, EnrollReply{req.job, true, surplus_for(req.deadline)},
         kMsgEnrollReply, req.job);
    return;
  }
  // Serve queued local arrivals once the site is free. Deferred to a fresh
  // event so responder handlers never nest a whole initiator pipeline.
  if (!lock_.has_value() && !queue_.empty() && !start_pending_) {
    start_pending_ = true;
    sim_.schedule_in(0.0, [this]() { fire_start_next(); });
    if (sim_.recording())
      sim_.annotate(node_record(EventRecord::Kind::kStartNext, site_));
  }
}

void RtdsNode::fire_start_next() {
  start_pending_ = false;
  start_next_job();
}

}  // namespace rtds
