#include "core/rtds_system.hpp"

#include <algorithm>
#include <utility>

#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "routing/transport.hpp"
#include "snap/warm_start.hpp"

namespace rtds {

const char* to_string(TransportModel model) {
  switch (model) {
    case TransportModel::kIdeal: return "ideal";
    case TransportModel::kContended: return "contended";
  }
  return "?";
}

RtdsSystem::RtdsSystem(Topology topo, SystemConfig cfg)
    : topo_(std::move(topo)), cfg_(std::move(cfg)) {
  RTDS_REQUIRE_MSG(topo_.connected(), "topology must be connected (§2)");
  const auto h = cfg_.node.sphere_radius_h;

  // Checkpoint support: recording must be live before the first schedule
  // call (the fault plan below), or Snapshot::save would meet opaque
  // events.
  sim_.set_recording(cfg_.record_events);

  // §9: a non-empty fault plan switches the protocol into its
  // fault-tolerant mode. The plan's events become ordinary simulator
  // events, so the whole run stays deterministic.
  if (!cfg_.faults.empty()) {
    // Reject malformed plans (scripted or generated) before any event is
    // scheduled: out-of-range sites, unknown links, bad partition cuts,
    // non-monotone times all fail here with the offending event index.
    cfg_.faults.validate(topo_);
    cfg_.node.fault_tolerant = true;
    // One seed drives the whole adversarial run: the plan's perturbation
    // stream and every node's retransmit-backoff jitter derive from it.
    cfg_.node.fault_seed = cfg_.faults.seed;
    fault_state_ = std::make_unique<fault::FaultState>(topo_, cfg_.faults);
    for (const auto& ev : cfg_.faults.events) {
      sim_.schedule_at(ev.at, [this, ev]() { apply_fault(ev); });
      if (sim_.recording()) {
        EventRecord rec;
        rec.kind = EventRecord::Kind::kFault;
        rec.small = static_cast<std::uint8_t>(ev.kind);
        rec.site = ev.a;
        rec.peer = ev.b;
        rec.x = ev.at;
        sim_.annotate(std::move(rec));
      }
    }
  }

  // §12 runtime invariant checker: per-run flag OR the process-global one
  // (the CLIs' --check-invariants). Pure observer — never changes bytes.
  if (cfg_.check_invariants || fault::check_invariants_enabled()) {
    checker_ = std::make_unique<fault::InvariantChecker>();
    sim_.set_event_observer(
        [](void* ctx, Time now) {
          static_cast<fault::InvariantChecker*>(ctx)->on_event(now);
        },
        checker_.get());
  }

  // §7: interrupted APSP, 2h phases. With warm-start enabled (snap/,
  // DESIGN.md §14), identical (topology, h) bring-ups deserialize the
  // tables and spheres from a process-wide cache instead of recomputing —
  // the cache stores serialized bytes of a cold build, so a warm bring-up
  // is bit-identical by construction.
  std::vector<Pcs> warm_spheres;
  if (snap::warm_start_enabled()) {
    if (!snap::warm_start_acquire(topo_, h, tables_, warm_spheres)) {
      {
        RTDS_OBS_PHASE("sys.apsp_build");
        tables_ = phased_apsp(topo_, 2 * h);
      }
      warm_spheres.reserve(topo_.site_count());
      for (SiteId s = 0; s < topo_.site_count(); ++s)
        warm_spheres.push_back(Pcs::build(tables_, s, h));
      snap::warm_start_store(topo_, h, tables_, warm_spheres);
    }
  } else {
    RTDS_OBS_PHASE("sys.apsp_build");
    tables_ = phased_apsp(topo_, 2 * h);
  }
  const auto& tables = tables_;

  switch (cfg_.transport_model) {
    case TransportModel::kIdeal:
      transport_ = std::make_unique<IdealTransport>(sim_, tables_);
      break;
    case TransportModel::kContended:
      transport_ = std::make_unique<ContendedTransport>(
          sim_, topo_, tables_, cfg_.link_bandwidth);
      break;
  }
  if (fault_state_ != nullptr) {
    transport_->set_fault_state(
        fault_state_.get(), [this](SiteId to, const MessageBody& body) {
          // A lost dispatch with a real assignment means the job is not
          // fully committed — the initiator cannot know (the paper's
          // protocol has no dispatch ack), so the system layer accounts it.
          // With §12 retransmission on, the initiator DOES know (ack or
          // backoff exhaustion), and that path owns the accounting.
          if (cfg_.node.retransmit) return;
          if (const auto* d = std::get_if<DispatchMsg>(&body))
            if (d->logical != kNoLogical) on_dispatch_failure(d->job, to);
        });
  }

  if (cfg_.measure_pcs_build_cost) {
    RTDS_OBS_PHASE("sys.pcs_build_cost");
    // Re-run as real messages on a throwaway simulator and reconcile.
    Simulator build_sim;
    SimNetwork build_net(build_sim, topo_);
    const auto dist = distributed_apsp(build_sim, build_net, 2 * h);
    metrics_.pcs_build_messages = dist.messages;
    for (SiteId s = 0; s < topo_.site_count(); ++s) {
      RTDS_CHECK_MSG(dist.tables[s].size() == tables[s].size(),
                     "distributed and in-memory APSP disagree at site " << s);
      for (SiteId dest = 0; dest < tables[s].site_count(); ++dest) {
        if (!tables[s].has_route(dest)) continue;
        const auto& line = tables[s].route(dest);
        const auto& other = dist.tables[s].route(dest);
        RTDS_CHECK(time_eq(other.dist, line.dist));
        RTDS_CHECK(other.hops == line.hops);
      }
    }
  }

  RTDS_OBS_PHASE("sys.bring_up");
  nodes_.reserve(topo_.site_count());
  for (SiteId s = 0; s < topo_.site_count(); ++s) {
    RtdsConfig node_cfg = cfg_.node;
    // §13 uniform machines: execution rate scales with computing power.
    node_cfg.sched.computing_power = topo_.computing_power(s);
    nodes_.push_back(std::make_unique<RtdsNode>(
        s, sim_, *transport_,
        s < warm_spheres.size() ? std::move(warm_spheres[s])
                                : Pcs::build(tables, s, h),
        node_cfg, *this));
    if (checker_ == nullptr) {
      transport_->set_handler(s, [node = nodes_.back().get()](
                                     SiteId from, const MessageBody& payload) {
        node->on_message(from, payload);
      });
    } else {
      // Checked delivery: assert no message reaches a crashed site before
      // handing it to the node. Only this wrapper costs anything, and only
      // when the checker is on.
      transport_->set_handler(
          s, [this, node = nodes_.back().get(), s](SiteId from,
                                                   const MessageBody& payload) {
            checker_->on_delivery(
                s, fault_state_ == nullptr || fault_state_->site_up(s),
                sim_.now());
            node->on_message(from, payload);
          });
    }
  }
}

void RtdsSystem::run(const std::vector<JobArrival>& arrivals) {
  start(arrivals);
  {
    RTDS_OBS_PHASE("sys.run");
    sim_.run();
  }
  finish();
}

void RtdsSystem::run_stream(std::function<std::optional<JobArrival>()> next) {
  start_stream(std::move(next));
  {
    RTDS_OBS_PHASE("sys.run");
    sim_.run();
  }
  finish();
}

void RtdsSystem::start(const std::vector<JobArrival>& arrivals) {
  RTDS_REQUIRE_MSG(!ran_, "RtdsSystem::run may only be called once");
  ran_ = true;
  job_messages_.reserve(arrivals.size());
  accepted_.reserve(arrivals.size());
  // Duplicate-id check via one sort instead of a node per arrival (large
  // scenario trials schedule thousands of arrivals here).
  std::vector<JobId> ids;
  ids.reserve(arrivals.size());
  for (const auto& a : arrivals) {
    RTDS_REQUIRE(a.site < nodes_.size());
    RTDS_REQUIRE(a.job != nullptr);
    ids.push_back(a.job->id);
    RTDS_REQUIRE_MSG(time_lt(a.job->release, a.job->deadline),
                     "job " << a.job->id << " has an empty window");
    sim_.schedule_at(a.job->release, [this, a]() {
      nodes_[a.site]->submit(a.job);
    });
    if (sim_.recording()) {
      EventRecord rec;
      rec.kind = EventRecord::Kind::kArrival;
      rec.site = a.site;
      rec.job_ref = a.job;
      sim_.annotate(std::move(rec));
    }
  }
  std::sort(ids.begin(), ids.end());
  const auto dup = std::adjacent_find(ids.begin(), ids.end());
  RTDS_REQUIRE_MSG(dup == ids.end(), "duplicate job id " << *dup);
  if (checker_ != nullptr) checker_->on_submitted(arrivals.size());
}

void RtdsSystem::start_stream(std::function<std::optional<JobArrival>()> next) {
  RTDS_REQUIRE_MSG(!ran_, "RtdsSystem::run may only be called once");
  RTDS_REQUIRE(next != nullptr);
  ran_ = true;
  stream_next_ = std::move(next);
  if (auto first = stream_next_()) schedule_streamed(std::move(*first));
}

std::size_t RtdsSystem::step_events(std::size_t max_events) {
  RTDS_OBS_PHASE("sys.run");
  return sim_.run_chunk(max_events);
}

std::size_t RtdsSystem::run_events_until(Time t_end) {
  RTDS_OBS_PHASE("sys.run");
  return sim_.run_until(t_end);
}

void RtdsSystem::finish() {
  RTDS_GAUGE_MAX("sim.events", sim_.executed_events());
  verify_invariants();
}

void RtdsSystem::schedule_streamed(JobArrival a) {
  RTDS_REQUIRE(a.site < nodes_.size());
  RTDS_REQUIRE(a.job != nullptr);
  RTDS_REQUIRE_MSG(time_lt(a.job->release, a.job->deadline),
                   "job " << a.job->id << " has an empty window");
  // Sources contract non-decreasing releases exactly (no epsilon): the
  // lazy chain schedules each submit from inside its predecessor's event,
  // so a backwards release would schedule into the past.
  RTDS_REQUIRE_MSG(!(a.job->release < last_stream_release_),
                   "streamed arrivals must have non-decreasing releases (job "
                       << a.job->id << ")");
  last_stream_release_ = a.job->release;
  if (checker_ != nullptr) checker_->on_submitted(1);
  sim_.schedule_at(a.job->release, [this, a]() { fire_stream_arrival(a); });
  if (sim_.recording()) {
    EventRecord rec;
    rec.kind = EventRecord::Kind::kStreamArrival;
    rec.site = a.site;
    rec.job_ref = a.job;
    sim_.annotate(std::move(rec));
  }
}

void RtdsSystem::fire_stream_arrival(const JobArrival& a) {
  nodes_[a.site]->submit(a.job);
  if (auto nxt = stream_next_()) schedule_streamed(std::move(*nxt));
}

void RtdsSystem::on_job_decision(const JobDecision& decision) {
  if (checker_ != nullptr) checker_->on_decision(decision.job, sim_.now());
  JobDecision d = decision;
  d.link_messages = job_messages_[d.job];
  metrics_.record(d);
  if (cfg_.on_decision_observed) cfg_.on_decision_observed(d);
  if (cfg_.retain_decisions) decisions_.push_back(d);
  if (d.outcome != JobOutcome::kRejected) {
    JobTrack track;
    track.tasks_expected = d.task_count;
    track.arrival = d.arrival;
    track.deadline = d.deadline;
    track.failed = early_failures_.contains(d.job);
    accepted_[d.job] = track;
  }
}

void RtdsSystem::on_task_complete(JobId job, TaskId task, SiteId site,
                                  Time end) {
  (void)task;
  (void)site;
  JobTrack* track = accepted_.find(job);
  RTDS_CHECK_MSG(track != nullptr, "task completion for unaccepted job " << job);
  ++track->tasks_done;
  track->completion = std::max(track->completion, end);
  if (cfg_.on_job_completed && track->tasks_done == track->tasks_expected &&
      !track->failed) {
    cfg_.on_job_completed(track->arrival, track->completion);
  }
}

void RtdsSystem::on_job_messages(JobId job, std::uint64_t hops) {
  job_messages_[job] += hops;
}

void RtdsSystem::on_dispatch_failure(JobId job, SiteId site) {
  (void)site;
  ++metrics_.dispatch_failures;
  if (JobTrack* track = accepted_.find(job))
    track->failed = true;
  else
    early_failures_.insert(job);  // initiator self-commit precedes conclude
}

void RtdsSystem::on_retransmit(JobId job) {
  (void)job;
  ++metrics_.retransmits;
}

void RtdsSystem::on_job_lost(JobId job, SiteId site) {
  (void)site;
  // Committed work died in a crash. Decisions always precede commits (both
  // happen inside one simulator event), so the track exists.
  JobTrack* track = accepted_.find(job);
  RTDS_CHECK_MSG(track != nullptr, "lost work for unaccepted job " << job);
  if (!track->failed) {
    track->failed = true;
    ++metrics_.jobs_lost;
  }
}

void RtdsSystem::apply_fault(const fault::FaultEvent& ev) {
  if (!fault_state_->apply(ev)) return;  // redundant scripted event
  RTDS_COUNT("fault.events");
  if (auto* tr = obs::tracer()) {
    const char* name = "?";
    switch (ev.kind) {
      case fault::FaultKind::kSiteDown: name = "site_down"; break;
      case fault::FaultKind::kSiteUp: name = "site_up"; break;
      case fault::FaultKind::kLinkDown: name = "link_down"; break;
      case fault::FaultKind::kLinkUp: name = "link_up"; break;
      case fault::FaultKind::kPartition: name = "partition"; break;
      case fault::FaultKind::kHeal: name = "heal"; break;
    }
    tr->instant("fault", name, sim_.now(), ev.a,
                ev.b == kNoSite ? ev.a : ev.b, 0);
  }
  switch (ev.kind) {
    case fault::FaultKind::kSiteDown:
      nodes_[ev.a]->crash();
      break;
    case fault::FaultKind::kSiteUp:
      nodes_[ev.a]->recover();
      break;
    case fault::FaultKind::kLinkDown:
    case fault::FaultKind::kLinkUp:
    case fault::FaultKind::kPartition:  // severs links; no site crashes
    case fault::FaultKind::kHeal:
      break;  // pure topology change
  }
  if (ev.kind == fault::FaultKind::kPartition ||
      ev.kind == fault::FaultKind::kHeal) {
    // Seed the repair with every endpoint of the links the cut flipped.
    const auto& changed = fault_state_->partition_changed_sites();
    repair_routing(std::span<const SiteId>(changed.data(), changed.size()));
  } else {
    const SiteId changed[2] = {ev.a, ev.b};
    repair_routing(std::span<const SiteId>(changed, ev.b == kNoSite ? 1 : 2));
  }
}

void RtdsSystem::repair_routing(std::span<const SiteId> changed) {
  RTDS_OBS_PHASE("sys.repair");
  const auto h = cfg_.node.sphere_radius_h;
  if (repairer_ == nullptr)
    repairer_ = std::make_unique<ApspRepairer>(topo_, 2 * h);
  repairer_->repair(tables_, fault_state_.get(), changed);
  if (checker_ != nullptr)
    checker_->on_repair(tables_, topo_, *fault_state_, sim_.now());
  // Charge the nominal §7.2 exchange: each of the 2h phases ships one
  // table over every live directed link. The *simulator* repairs
  // incrementally, but the modelled protocol still floods, so the charge —
  // and with it every experiment table — is unchanged. (PCS membership
  // stays the construction-time sphere — the paper's spheres are static;
  // dead members are what the enrollment/validation timeouts are for.)
  metrics_.repair_messages +=
      2 * fault_state_->live_link_count(topo_) * 2 * h;
}

void RtdsSystem::verify_invariants() {
  if (checker_ != nullptr) {
    std::size_t locks_held = 0;
    for (const auto& node : nodes_) locks_held += node->locked() ? 1 : 0;
    checker_->finish(metrics_, locks_held, sim_.now());
  }
  for (const auto& node : nodes_) {
    RTDS_CHECK_MSG(!node->locked(),
                   "site " << node->site() << " still locked at end of run");
    RTDS_CHECK_MSG(node->queued_jobs() == 0,
                   "site " << node->site() << " still has queued jobs");
    RTDS_CHECK_MSG(node->active_initiations() == 0,
                   "site " << node->site() << " has unfinished initiations");
  }
  for (const auto& [job, track] : accepted_.sorted_items()) {
    if (track.failed) {
      ++metrics_.failed_jobs;
      continue;
    }
    RTDS_CHECK_MSG(track.tasks_done == track.tasks_expected,
                   "job " << job << " finished " << track.tasks_done << "/"
                          << track.tasks_expected << " tasks");
    metrics_.job_lateness.add(track.completion - track.deadline);
    if (time_gt(track.completion, track.deadline)) ++metrics_.deadline_misses;
  }
  RTDS_CHECK_MSG(metrics_.deadline_misses == 0,
                 "accepted jobs missed deadlines: " << metrics_.deadline_misses);
  RTDS_CHECK_MSG(cfg_.transport_model == TransportModel::kContended ||
                     !cfg_.faults.empty() || metrics_.dispatch_failures == 0,
                 "dispatch failures under the ideal faultless transport");
  metrics_.transport = transport_->stats();
  metrics_.messages_duplicated = metrics_.transport.messages_duplicated;
  if (checker_ != nullptr)
    metrics_.invariant_violations = checker_->violations();
  for (const auto& node : nodes_) {
    metrics_.pcs_size_max =
        std::max<std::uint64_t>(metrics_.pcs_size_max, node->pcs().size());
    metrics_.pcs_hop_diameter_max = std::max<std::uint64_t>(
        metrics_.pcs_hop_diameter_max, node->pcs().hop_diameter());
  }
}

}  // namespace rtds
