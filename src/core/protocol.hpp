// RTDS protocol messages (Figure 1 flow).
//
// Payloads travel as MessageBody (a closed variant, core/messages.hpp)
// through the SimNetwork; immutable bulky data (the job's DAG, the trial
// mapping) is shared via shared_ptr-to-const so a broadcast to the ACS does
// not copy it per member — the simulated network still charges the full
// per-hop message cost.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/trial_mapping.hpp"
#include "dag/dag.hpp"
#include "net/topology.hpp"

namespace rtds {

/// Message categories for transport accounting (E1 breaks these out).
enum MsgCategory : int {
  kMsgEnroll = 1,
  kMsgEnrollReply = 2,
  kMsgUnlock = 3,
  kMsgValidate = 4,
  kMsgValidateReply = 5,
  kMsgDispatch = 6,
  kMsgDispatchAck = 7,
};

const char* msg_category_name(int category);

/// "Not assigned to any logical processor" marker in dispatch messages.
inline constexpr std::uint32_t kNoLogical = static_cast<std::uint32_t>(-1);

/// §8 — initiator k asks a PCS member to enroll for a job. The deadline is
/// included so the member can report its surplus over the job's own
/// scheduling window (the paper's "observational window" is unspecified; a
/// job-relative window makes the surplus actually predictive — ablated as
/// RtdsConfig::job_window_surplus).
struct EnrollRequest {
  JobId job = 0;
  Time deadline = 0.0;
  std::uint64_t seq = 0;  ///< per-(sender,receiver) dedup sequence (§12)
};

/// §8 — enrolled site reports its surplus. `accepted == false` is the Nack
/// enrollment policy's "I am locked" reply (see DESIGN.md fidelity notes).
struct EnrollReply {
  JobId job = 0;
  bool accepted = false;
  double surplus = 0.0;
  std::uint64_t seq = 0;
};

/// §8/§10/§11 — releases the receiver's lock for this job.
struct UnlockMsg {
  JobId job = 0;
  std::uint64_t seq = 0;
};

/// §10 — the initiator broadcasts the Trial-Mapping M to the ACS.
struct ValidateRequest {
  JobId job = 0;
  std::shared_ptr<const Job> job_data;
  std::shared_ptr<const TrialMapping> mapping;
  std::uint64_t seq = 0;
};

/// §10 — a site lists the logical processors it can endorse.
struct ValidateReply {
  JobId job = 0;
  std::vector<std::uint32_t> endorsable;
  std::uint64_t seq = 0;
};

/// §11 — the permutation + task codes. A receiver with logical ==
/// kNoLogical is not involved and simply unlocks.
struct DispatchMsg {
  JobId job = 0;
  std::uint32_t logical = kNoLogical;
  std::shared_ptr<const Job> job_data;
  std::shared_ptr<const TrialMapping> mapping;
  std::uint64_t seq = 0;
};

/// §12 hardening — explicit receipt for a DispatchMsg, the one protocol
/// message with no reply of its own. Only sent when retransmission is
/// enabled (RtdsConfig::retransmit); the initiator cancels the dispatch's
/// retry timer on the first ack.
struct DispatchAck {
  JobId job = 0;
  std::uint64_t seq = 0;
};

}  // namespace rtds
