// Workload-trace serialization: save a generated arrival sequence to a
// file and replay it later, so experiment inputs can be archived and
// compared across library versions independently of the RNG.
//
// Format:
//   trace v1
//   jobs <n>
//   job <id> <site> <release> <deadline>
//   <embedded dag v1 block>
//   ... (repeated per job)
//   end
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/workload.hpp"

namespace rtds {

void write_trace(const std::vector<JobArrival>& arrivals, std::ostream& os);
std::string trace_to_string(const std::vector<JobArrival>& arrivals);

/// Parses and validates a trace. Beyond the format checks, every job line
/// must carry finite non-negative times, a non-empty window
/// (release < deadline), a release no earlier than its predecessor's
/// (traces are arrival-ordered), and — when `site_count` > 0 — a site id
/// inside the system; job ids must be unique. Violations throw
/// ContractViolation naming the offending trace line.
std::vector<JobArrival> read_trace(std::istream& is, std::size_t site_count = 0);
std::vector<JobArrival> trace_from_string(const std::string& text,
                                          std::size_t site_count = 0);

}  // namespace rtds
