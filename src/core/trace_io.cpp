#include "core/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <streambuf>

#include "dag/io.hpp"

namespace rtds {

namespace {

/// Unbuffered pass-through streambuf that counts consumed newlines, so
/// validation errors can name the exact trace line even though the dag
/// blocks are parsed by read_dag (which consumes an unknown number of
/// lines). Per-character virtual dispatch is fine at trace-file sizes.
class LineCountingBuf final : public std::streambuf {
 public:
  explicit LineCountingBuf(std::streambuf* src) : src_(src) {}
  /// 1-based number of the line about to be read.
  std::size_t line() const { return line_; }

 protected:
  int_type underflow() override { return src_->sgetc(); }
  int_type uflow() override {
    const int_type c = src_->sbumpc();
    if (c == '\n') ++line_;
    return c;
  }

 private:
  std::streambuf* src_;
  std::size_t line_ = 1;
};

}  // namespace

void write_trace(const std::vector<JobArrival>& arrivals, std::ostream& os) {
  os << "trace v1\n";
  os << "jobs " << arrivals.size() << "\n";
  os.precision(17);
  for (const auto& a : arrivals) {
    RTDS_REQUIRE(a.job != nullptr);
    os << "job " << a.job->id << ' ' << a.site << ' ' << a.job->release << ' '
       << a.job->deadline << "\n";
    write_dag(a.job->dag, os);
  }
  os << "end\n";
}

std::string trace_to_string(const std::vector<JobArrival>& arrivals) {
  std::ostringstream os;
  write_trace(arrivals, os);
  return os.str();
}

std::vector<JobArrival> read_trace(std::istream& is, std::size_t site_count) {
  LineCountingBuf buf(is.rdbuf());
  std::istream in(&buf);
  std::vector<JobArrival> arrivals;
  std::string line;
  std::size_t line_no = buf.line();
  std::getline(in, line);
  RTDS_REQUIRE_MSG(line == "trace v1",
                   "trace line " << line_no << ": expected header 'trace v1'");
  std::size_t count = 0;
  {
    line_no = buf.line();
    std::getline(in, line);
    std::istringstream ls(line);
    std::string word;
    ls >> word >> count;
    RTDS_REQUIRE_MSG(word == "jobs" && !ls.fail(),
                     "trace line " << line_no << ": expected 'jobs <n>'");
  }
  arrivals.reserve(count);
  Time prev_release = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    line_no = buf.line();
    std::getline(in, line);
    std::istringstream ls(line);
    std::string word;
    JobId id = 0;
    std::size_t site = 0;
    Time release = 0.0, deadline = 0.0;
    ls >> word >> id >> site >> release >> deadline;
    RTDS_REQUIRE_MSG(word == "job" && !ls.fail(),
                     "trace line " << line_no
                                   << ": expected 'job <id> <site> <release> "
                                      "<deadline>'");
    RTDS_REQUIRE_MSG(std::isfinite(release) && std::isfinite(deadline),
                     "trace line " << line_no << ": job " << id
                                   << " has a NaN/non-finite release or "
                                      "deadline");
    RTDS_REQUIRE_MSG(release >= 0.0 && deadline >= 0.0,
                     "trace line " << line_no << ": job " << id
                                   << " has a negative release or deadline");
    RTDS_REQUIRE_MSG(release < deadline,
                     "trace line " << line_no << ": job " << id
                                   << " has an empty window (deadline <= "
                                      "release)");
    if (site_count > 0) {
      RTDS_REQUIRE_MSG(site < site_count,
                       "trace line " << line_no << ": job " << id << " site "
                                     << site << " outside the " << site_count
                                     << "-site system");
    }
    RTDS_REQUIRE_MSG(release >= prev_release,
                     "trace line " << line_no << ": job " << id
                                   << " breaks arrival order (release "
                                   << release << " after " << prev_release
                                   << ")");
    prev_release = release;
    auto job = std::make_shared<Job>();
    job->id = id;
    job->release = release;
    job->deadline = deadline;
    job->dag = read_dag(in);
    arrivals.push_back(JobArrival{static_cast<SiteId>(site), std::move(job)});
  }
  line_no = buf.line();
  std::getline(in, line);
  RTDS_REQUIRE_MSG(line == "end",
                   "trace line " << line_no << ": expected trailing 'end'");
  std::vector<JobId> ids;
  ids.reserve(arrivals.size());
  for (const auto& a : arrivals) ids.push_back(a.job->id);
  std::sort(ids.begin(), ids.end());
  const auto dup = std::adjacent_find(ids.begin(), ids.end());
  RTDS_REQUIRE_MSG(dup == ids.end(), "trace has duplicate job id " << *dup);
  return arrivals;
}

std::vector<JobArrival> trace_from_string(const std::string& text,
                                          std::size_t site_count) {
  std::istringstream is(text);
  return read_trace(is, site_count);
}

}  // namespace rtds
