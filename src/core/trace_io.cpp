#include "core/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "dag/io.hpp"

namespace rtds {

void write_trace(const std::vector<JobArrival>& arrivals, std::ostream& os) {
  os << "trace v1\n";
  os << "jobs " << arrivals.size() << "\n";
  os.precision(17);
  for (const auto& a : arrivals) {
    RTDS_REQUIRE(a.job != nullptr);
    os << "job " << a.job->id << ' ' << a.site << ' ' << a.job->release << ' '
       << a.job->deadline << "\n";
    write_dag(a.job->dag, os);
  }
  os << "end\n";
}

std::string trace_to_string(const std::vector<JobArrival>& arrivals) {
  std::ostringstream os;
  write_trace(arrivals, os);
  return os.str();
}

std::vector<JobArrival> read_trace(std::istream& is) {
  std::vector<JobArrival> arrivals;
  std::string line;
  std::getline(is, line);
  RTDS_REQUIRE_MSG(line == "trace v1", "expected header 'trace v1'");
  std::size_t count = 0;
  {
    std::getline(is, line);
    std::istringstream ls(line);
    std::string word;
    ls >> word >> count;
    RTDS_REQUIRE_MSG(word == "jobs" && !ls.fail(), "expected 'jobs <n>'");
  }
  arrivals.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::getline(is, line);
    std::istringstream ls(line);
    std::string word;
    JobId id = 0;
    std::size_t site = 0;
    Time release = 0.0, deadline = 0.0;
    ls >> word >> id >> site >> release >> deadline;
    RTDS_REQUIRE_MSG(word == "job" && !ls.fail(),
                     "expected 'job <id> <site> <release> <deadline>'");
    auto job = std::make_shared<Job>();
    job->id = id;
    job->release = release;
    job->deadline = deadline;
    job->dag = read_dag(is);
    arrivals.push_back(JobArrival{static_cast<SiteId>(site), std::move(job)});
  }
  std::getline(is, line);
  RTDS_REQUIRE_MSG(line == "end", "expected trailing 'end'");
  return arrivals;
}

std::vector<JobArrival> trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace rtds
