#include "core/metrics.hpp"

namespace rtds {

const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kAcceptedLocal: return "accepted_local";
    case JobOutcome::kAcceptedRemote: return "accepted_remote";
    case JobOutcome::kRejected: return "rejected";
  }
  return "?";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kNoCandidates: return "no_candidates";
    case RejectReason::kGated: return "gated";
    case RejectReason::kMapperCaseI: return "mapper_case_i";
    case RejectReason::kMapperWindows: return "mapper_windows";
    case RejectReason::kMatchingFailed: return "matching_failed";
    case RejectReason::kOffloadRefused: return "offload_refused";
    case RejectReason::kSiteDown: return "site_down";
  }
  return "?";
}

void RunMetrics::record(const JobDecision& d) {
  ++arrived;
  switch (d.outcome) {
    case JobOutcome::kAcceptedLocal:
      ++accepted_local;
      break;
    case JobOutcome::kAcceptedRemote:
      ++accepted_remote;
      break;
    case JobOutcome::kRejected:
      ++rejected;
      ++reject_by_reason[static_cast<int>(d.reject_reason)];
      break;
  }
  if (d.adjustment_case != 0) ++adjustment_cases[d.adjustment_case];
  if (d.fault_recovered && d.outcome != JobOutcome::kRejected)
    ++jobs_rescheduled;
  decision_latency.add(d.decision_time - d.arrival);
  if (d.acs_size > 1) acs_size.add(static_cast<double>(d.acs_size));
  msgs_per_job.add(static_cast<double>(d.link_messages));
}

}  // namespace rtds
