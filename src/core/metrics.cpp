#include "core/metrics.hpp"

#include <cstdio>
#include <ostream>

#include "obs/obs.hpp"

namespace rtds {

const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kAcceptedLocal: return "accepted_local";
    case JobOutcome::kAcceptedRemote: return "accepted_remote";
    case JobOutcome::kRejected: return "rejected";
  }
  return "?";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kNoCandidates: return "no_candidates";
    case RejectReason::kGated: return "gated";
    case RejectReason::kMapperCaseI: return "mapper_case_i";
    case RejectReason::kMapperWindows: return "mapper_windows";
    case RejectReason::kMatchingFailed: return "matching_failed";
    case RejectReason::kOffloadRefused: return "offload_refused";
    case RejectReason::kSiteDown: return "site_down";
    case RejectReason::kShed: return "shed";
  }
  return "?";
}

void RunMetrics::record(const JobDecision& d) {
  ++arrived;
  // Decision counters for the obs layer. This choke point is shared by
  // RTDS and every baseline policy, so one set of increments covers the
  // whole policy registry.
  RTDS_COUNT("jobs.decided");
  switch (d.outcome) {
    case JobOutcome::kAcceptedLocal:
      ++accepted_local;
      RTDS_COUNT("jobs.accepted_local");
      break;
    case JobOutcome::kAcceptedRemote:
      ++accepted_remote;
      RTDS_COUNT("jobs.accepted_remote");
      break;
    case JobOutcome::kRejected:
      ++rejected;
      ++reject_by_reason[static_cast<int>(d.reject_reason)];
      RTDS_COUNT("jobs.rejected");
      if (d.reject_reason == RejectReason::kShed) RTDS_COUNT("jobs.shed");
      break;
  }
  if (d.adjustment_case != 0) ++adjustment_cases[d.adjustment_case];
  if (d.fault_recovered && d.outcome != JobOutcome::kRejected) {
    ++jobs_rescheduled;
    RTDS_COUNT("jobs.rescheduled");
  }
  decision_latency.add(d.decision_time - d.arrival);
  if (d.acs_size > 1) acs_size.add(static_cast<double>(d.acs_size));
  msgs_per_job.add(static_cast<double>(d.link_messages));
}

namespace {

/// printf %.17g — round-trippable and byte-deterministic for identical
/// doubles, matching the trace exporter's timestamp formatting.
void put_num(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void put_stat(std::ostream& os, const char* key, const RunningStat& s) {
  os << "\"" << key << "\":{\"count\":" << s.count() << ",\"mean\":";
  put_num(os, s.mean());
  os << ",\"stddev\":";
  put_num(os, s.stddev());
  os << ",\"min\":";
  put_num(os, s.count() ? s.min() : 0.0);
  os << ",\"max\":";
  put_num(os, s.count() ? s.max() : 0.0);
  os << "}";
}

}  // namespace

void RunMetrics::to_jsonl(std::ostream& os) const {
  os << "{\"arrived\":" << arrived                       //
     << ",\"accepted_local\":" << accepted_local         //
     << ",\"accepted_remote\":" << accepted_remote       //
     << ",\"rejected\":" << rejected                     //
     << ",\"guarantee_ratio\":";
  put_num(os, guarantee_ratio());
  os << ",\"delivered_ratio\":";
  put_num(os, delivered_ratio());
  os << ",\"deadline_misses\":" << deadline_misses       //
     << ",\"dispatch_failures\":" << dispatch_failures   //
     << ",\"failed_jobs\":" << failed_jobs               //
     << ",\"jobs_lost\":" << jobs_lost                   //
     << ",\"jobs_rescheduled\":" << jobs_rescheduled     //
     << ",\"repair_messages\":" << repair_messages       //
     << ",\"messages_duplicated\":" << messages_duplicated  //
     << ",\"retransmits\":" << retransmits               //
     << ",\"invariant_violations\":" << invariant_violations;
  os << ",\"reject_by_reason\":{";
  bool first = true;
  for (const auto& [reason, count] : reject_by_reason) {
    if (!first) os << ",";
    first = false;
    os << "\"" << to_string(static_cast<RejectReason>(reason))
       << "\":" << count;
  }
  os << "},\"adjustment_cases\":{";
  first = true;
  for (const auto& [c, count] : adjustment_cases) {
    if (!first) os << ",";
    first = false;
    os << "\"" << c << "\":" << count;
  }
  os << "},";
  put_stat(os, "decision_latency", decision_latency);
  os << ",";
  put_stat(os, "acs_size", acs_size);
  os << ",";
  put_stat(os, "msgs_per_job", msgs_per_job);
  os << ",";
  put_stat(os, "job_lateness", job_lateness);
  os << ",\"transport\":{\"sends\":" << transport.total_sends
     << ",\"link_messages\":" << transport.total_link_messages
     << ",\"dropped\":" << transport.messages_dropped
     << ",\"duplicated\":" << transport.messages_duplicated
     << ",\"by_category\":{";
  first = true;
  for (const auto& [category, entry] : transport.by_category) {
    if (!first) os << ",";
    first = false;
    os << "\"" << category << "\":{\"sends\":" << entry.sends
       << ",\"link_messages\":" << entry.link_messages << "}";
  }
  os << "}},\"pcs_build_messages\":" << pcs_build_messages
     << ",\"pcs_size_max\":" << pcs_size_max
     << ",\"pcs_hop_diameter_max\":" << pcs_hop_diameter_max << "}\n";
}

}  // namespace rtds
