// Trial-Mapping M = (S, r, d) — §9.
//
// S : T -> U assigns each task to a *logical* processor (1..|U| in the
// paper, 0-based here); r and d are the adjusted per-task release times and
// deadlines of §12.2. Logical processors are bound to physical ACS sites
// only later, by the maximum-coupling validation (§10).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/dag.hpp"
#include "sched/admission.hpp"

namespace rtds {

/// Which §12.2 adjustment branch produced the windows.
enum class AdjustmentCase {
  kReject = 1,   ///< (i)  M* > d - r: infeasible even at full speed
  kStretch = 2,  ///< (ii) M <= d - r: scale by (d-r)/M  (eqs. 3, 5)
  kLaxity = 3,   ///< (iii) M* <= d - r <= M: distribute laxity (eqs. 4, 5)
};

const char* to_string(AdjustmentCase c);

struct TrialMapping {
  /// assignment[t] = logical processor of task t, in [0, used_processors).
  std::vector<std::uint32_t> assignment;
  /// Adjusted windows, indexed by task: the r(t_i) / d(t_i) of Table 1.
  std::vector<Time> release;
  std::vector<Time> deadline;
  /// |U|: number of logical processors that received at least one task.
  std::uint32_t used_processors = 0;
  /// Surplus each logical processor was assumed to have (descending).
  std::vector<double> surpluses;

  Time makespan = 0.0;       ///< M  (surplus-degraded schedule S)
  Time makespan_full = 0.0;  ///< M* (100%-surplus schedule S*)
  AdjustmentCase adjustment = AdjustmentCase::kReject;

  /// Pre-adjustment schedule S (Fig. 3): per-task start/finish.
  std::vector<Time> s_start, s_finish;
  /// Full-speed schedule S* (Fig. 4).
  std::vector<Time> star_start, star_finish;

  /// tasks_of(u), grouped once at mapping construction: every ACS site
  /// validates the same logical processors, so the per-(site, u) regroup
  /// scan the old accessor did was pure waste.
  std::vector<std::vector<WindowedTask>> by_processor;

  /// Tasks of logical processor u as windowed instances (release/deadline =
  /// adjusted windows, cost = full-speed computational complexity) — what
  /// validation (§10) feeds the local schedulers. The span points into
  /// by_processor; take a copy (tasks_of) only to mutate.
  std::span<const WindowedTask> tasks_of_span(std::uint32_t u) const {
    return by_processor.at(u);
  }
  std::vector<WindowedTask> tasks_of(const Dag& dag, std::uint32_t u) const;
};

}  // namespace rtds
