// Sporadic workload generation (§2: jobs arrive at any time on any site).
//
// Per-site Poisson arrival processes; each job draws a DAG shape from a
// configurable mix and a deadline equal to
//   arrival + laxity × critical_path_length(dag)
// with laxity uniform in [laxity_min, laxity_max]. The critical path is the
// full-speed lower bound on any schedule, so laxity expresses how much
// slack the job has over the best possible makespan — the natural load knob
// for acceptance-ratio experiments (E2, E4).
#pragma once

#include <memory>
#include <vector>

#include "dag/generators.hpp"
#include "net/topology.hpp"

namespace rtds {

/// Arrival process per site.
enum class ArrivalProcess {
  kPoisson,  ///< memoryless sporadic arrivals (default)
  kBursty,   ///< ON/OFF modulated Poisson: quiet background, dense bursts
};

/// What the job deadline is proportional to (deadline = arrival + laxity×base).
enum class DeadlineModel {
  kCriticalPath,  ///< base = critical path: the parallel lower bound (default)
  kTotalWork,     ///< base = total work: the single-site lower bound
};

struct WorkloadConfig {
  double arrival_rate_per_site = 0.005;  ///< Poisson rate (jobs per time unit)
  Time horizon = 2000.0;                 ///< arrivals in [0, horizon)

  ArrivalProcess arrival_process = ArrivalProcess::kPoisson;
  /// kBursty: mean ON / OFF phase durations and the ON rate multiplier.
  Time burst_on_mean = 50.0;
  Time burst_off_mean = 200.0;
  double burst_multiplier = 6.0;

  DeadlineModel deadline_model = DeadlineModel::kCriticalPath;

  /// When data_volume_max > 0, every arc gets a uniform volume in
  /// [data_volume_min, data_volume_max] (the §13 decoration; pair with
  /// MapperConfig::account_data_volumes and link throughputs).
  double data_volume_min = 0.0;
  double data_volume_max = 0.0;
  std::vector<DagShape> shape_mix = {
      DagShape::kLayered, DagShape::kForkJoin, DagShape::kDiamond,
      DagShape::kRandom,  DagShape::kChain,
  };
  std::size_t min_tasks = 4;
  std::size_t max_tasks = 12;
  CostRange costs{1.0, 10.0};
  double laxity_min = 2.0;
  double laxity_max = 6.0;
  std::uint64_t seed = 42;
};

struct JobArrival {
  SiteId site = 0;
  std::shared_ptr<const Job> job;  ///< job->release is the arrival time
};

/// Generates all arrivals for `site_count` sites, sorted by arrival time.
/// Job ids are unique and dense starting at 1.
std::vector<JobArrival> generate_workload(std::size_t site_count,
                                          const WorkloadConfig& cfg);

}  // namespace rtds
