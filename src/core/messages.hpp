// The closed message set of the simulated network.
//
// Payloads used to travel as std::any — one heap allocation per message
// plus RTTI-driven dispatch. MessageBody is a std::variant over every
// message type in the tree: the §8–§11 RTDS protocol structs
// (core/protocol.hpp), the §7.2 APSP table exchange, the two
// message-passing baselines, and std::string as the tests' debug payload.
// A send moves the body into the delivery closure's inline storage (see
// sim/event_fn.hpp), so enqueue/deliver does zero heap allocation; bulky
// immutable data (DAGs, trial mappings, routing-table snapshots) still
// rides shared_ptr-to-const exactly as before.
//
// The variant must stay nothrow-move-constructible — that is what lets the
// delivery closure live in EventFn's inline buffer (static_asserts in
// sim/network.cpp pin both properties).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>

#include "core/protocol.hpp"
#include "routing/routing_table.hpp"

namespace rtds {

/// §7.2 — one phase-stamped routing-table snapshot, exchanged between
/// immediate neighbours during the interrupted APSP build. The snapshot
/// rides shared_ptr-to-const like the other bulky immutable payloads: one
/// phase-start copy is shared by every neighbour send of that phase, and
/// the message stays small enough for the delivery closure's inline
/// buffer now that RoutingTable carries its sphere-local slot map.
struct ApspTableMsg {
  std::size_t phase = 0;
  std::shared_ptr<const RoutingTable> table;
};

// --- baseline/offload.cpp (sphere-limited bid/offer negotiation) ---

struct BidRequest {
  JobId job = 0;
};
struct BidReply {
  JobId job = 0;
  double surplus = 0.0;
};
struct OfferMsg {
  JobId job = 0;
  std::shared_ptr<const Job> job_data;
};
struct OfferReply {
  JobId job = 0;
  bool accepted = false;
};

// --- baseline/broadcast.cpp (periodic flooding + focused addressing) ---

struct SurplusMsg {
  double surplus = 0.0;
};
struct FocusedOffer {
  JobId job = 0;
  std::shared_ptr<const Job> job_data;
};
struct FocusedReply {
  JobId job = 0;
  bool accepted = false;
};

using MessageBody =
    std::variant<std::monostate,
                 // RTDS protocol (§8–§11, + §12 hardening ack)
                 EnrollRequest, EnrollReply, UnlockMsg, ValidateRequest,
                 ValidateReply, DispatchMsg, DispatchAck,
                 // routing (§7.2)
                 ApspTableMsg,
                 // baselines
                 BidRequest, BidReply, OfferMsg, OfferReply, SurplusMsg,
                 FocusedOffer, FocusedReply,
                 // tests / debug
                 std::string>;

}  // namespace rtds
