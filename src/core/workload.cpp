#include "core/workload.hpp"

#include <algorithm>

#include "dag/analysis.hpp"

namespace rtds {

namespace {

/// Rebuilds `dag` with uniform random data volumes on every arc.
Dag decorate_volumes(const Dag& dag, double lo, double hi, Rng& rng) {
  Dag out;
  for (TaskId t = 0; t < dag.task_count(); ++t)
    out.add_task(dag.cost(t), dag.task(t).label);
  for (const auto& arc : dag.arcs())
    out.add_arc(arc.from, arc.to, rng.uniform(lo, hi));
  out.finalize();
  return out;
}

/// Draws the next inter-arrival time for the configured process. For the
/// bursty process, `in_burst`/`phase_left` carry the modulation state.
Time next_interarrival(const WorkloadConfig& cfg, Rng& rng, bool& in_burst,
                       Time& phase_left) {
  if (cfg.arrival_process == ArrivalProcess::kPoisson)
    return rng.exponential(cfg.arrival_rate_per_site);
  // Markov-modulated Poisson: walk phases until an arrival lands in one.
  Time waited = 0.0;
  for (;;) {
    const double rate = in_burst
                            ? cfg.arrival_rate_per_site * cfg.burst_multiplier
                            : cfg.arrival_rate_per_site /
                                  (1.0 + cfg.burst_multiplier);
    const Time gap = rng.exponential(rate);
    if (gap <= phase_left) {
      phase_left -= gap;
      return waited + gap;
    }
    waited += phase_left;
    in_burst = !in_burst;
    phase_left =
        rng.exponential(1.0 / (in_burst ? cfg.burst_on_mean : cfg.burst_off_mean));
  }
}

}  // namespace

std::vector<JobArrival> generate_workload(std::size_t site_count,
                                          const WorkloadConfig& cfg) {
  RTDS_REQUIRE(site_count >= 1);
  RTDS_REQUIRE(cfg.arrival_rate_per_site > 0.0);
  RTDS_REQUIRE(cfg.horizon > 0.0);
  RTDS_REQUIRE(!cfg.shape_mix.empty());
  RTDS_REQUIRE(cfg.min_tasks >= 1 && cfg.min_tasks <= cfg.max_tasks);
  RTDS_REQUIRE(cfg.laxity_min > 0.0 && cfg.laxity_min <= cfg.laxity_max);
  RTDS_REQUIRE(cfg.data_volume_min >= 0.0);
  RTDS_REQUIRE(cfg.data_volume_min <= cfg.data_volume_max ||
               cfg.data_volume_max == 0.0);
  if (cfg.arrival_process == ArrivalProcess::kBursty) {
    RTDS_REQUIRE(cfg.burst_on_mean > 0.0 && cfg.burst_off_mean > 0.0);
    RTDS_REQUIRE(cfg.burst_multiplier >= 1.0);
  }

  Rng rng(cfg.seed);
  std::vector<JobArrival> arrivals;
  JobId next_id = 1;
  for (SiteId site = 0; site < site_count; ++site) {
    Rng site_rng = rng.split();
    Time t = 0.0;
    bool in_burst = false;
    Time phase_left = site_rng.exponential(1.0 / cfg.burst_off_mean);
    for (;;) {
      t += next_interarrival(cfg, site_rng, in_burst, phase_left);
      if (t >= cfg.horizon) break;
      const auto shape = cfg.shape_mix[static_cast<std::size_t>(
          site_rng.uniform_int(0,
                               static_cast<std::int64_t>(cfg.shape_mix.size()) - 1))];
      const auto tasks = static_cast<std::size_t>(site_rng.uniform_int(
          static_cast<std::int64_t>(cfg.min_tasks),
          static_cast<std::int64_t>(cfg.max_tasks)));
      auto job = std::make_shared<Job>();
      job->id = next_id++;
      job->dag = make_shape(shape, tasks, cfg.costs, site_rng);
      if (cfg.data_volume_max > 0.0)
        job->dag = decorate_volumes(job->dag, cfg.data_volume_min,
                                    cfg.data_volume_max, site_rng);
      job->release = t;
      const double laxity = site_rng.uniform(cfg.laxity_min, cfg.laxity_max);
      const Time base = cfg.deadline_model == DeadlineModel::kCriticalPath
                            ? critical_path_length(job->dag)
                            : job->dag.total_work();
      job->deadline = t + laxity * base;
      arrivals.push_back(JobArrival{site, std::move(job)});
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const JobArrival& a, const JobArrival& b) {
              if (a.job->release != b.job->release)
                return a.job->release < b.job->release;
              return a.job->id < b.job->id;
            });
  return arrivals;
}

}  // namespace rtds
