// Per-site RTDS state machine (§4): local test, ACS construction with
// lock-based mutual exclusion (§8), Trial-Mapping construction (§9, §12),
// validation + maximum coupling (§10), and distributed execution (§11).
//
// Locking discipline (no deadlock by construction): a site acquires locks
// only by *replying* to enrollment — it never blocks waiting for one. An
// initiator holding locks never requests new ones for the same job.
//
// What the lock actually protects is the window between a site's
// ValidateReply and the initiator's Dispatch: the endorsed logical
// processors must still be satisfiable when the permutation arrives. A
// locked site therefore still accepts local arrivals *opportunistically*:
// before any endorsement is outstanding the plan may change freely (the
// surplus already reported is advisory), and afterwards a local job is
// accepted only if every endorsed logical processor remains satisfiable on
// the grown plan. Local jobs that would break an endorsement are queued
// until unlock. This keeps dispatch-time commitment infallible without
// freezing the whole sphere for the full protocol round.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/mapper.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "core/protocol.hpp"
#include "fault/dedup.hpp"
#include "routing/pcs.hpp"
#include "routing/transport.hpp"
#include "sched/local_scheduler.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace rtds::fault {
class InvariantChecker;
}

namespace rtds::snap {
struct Access;  // checkpoint serialization (snap/snapshot.cpp)
}

namespace rtds {

/// How an initiator learns which PCS members are available (§8). The paper
/// says locked sites ignore enrollment until unlocked but gives no
/// completion rule; see DESIGN.md.
enum class EnrollPolicy {
  kNack,     ///< locked sites reply "busy" immediately (default)
  kTimeout,  ///< locked sites buffer silently; initiator times out
};

const char* to_string(EnrollPolicy policy);

/// Cheap feasibility gate evaluated *before* enrolling the sphere (§9: the
/// mapper may reject a DAG whose "Trial-Mapping construction/validation
/// delay" would make it miss its deadline). A gated rejection saves the
/// whole enroll/lock round — important because enrollment freezes every
/// sphere member's plan and queues their local arrivals.
enum class EnrollGate {
  kNone,          ///< always try to distribute
  kCriticalPath,  ///< reject iff now + critical path > deadline (sound:
                  ///< no schedule anywhere can beat the critical path)
  kProtocolAware, ///< additionally charge 3× the PCS eccentricity for the
                  ///< protocol rounds (may reject jobs a smaller ACS could
                  ///< still have served — an over-estimate, ablated in E5)
};

const char* to_string(EnrollGate gate);

/// What a site does when a job needs queueing but the bounded admission
/// queue (RtdsConfig::admission_queue_cap) is full. Shed jobs get a
/// kRejected decision with RejectReason::kShed — overload is an explicit,
/// accounted outcome, never silent loss.
enum class ShedPolicy {
  kDropNewest,       ///< shed the incoming job (default; FIFO-preserving)
  kDropLowestLaxity, ///< shed the earliest-deadline job among queued + incoming
  kRejectEnroll,     ///< refuse at the door: full queue sheds the arrival
                     ///< before any admission work is spent on it
};

const char* to_string(ShedPolicy policy);

struct RtdsConfig {
  std::size_t sphere_radius_h = 2;       ///< PCS hop radius
  LocalSchedulerConfig sched;
  MapperConfig mapper;
  EnrollPolicy enroll_policy = EnrollPolicy::kNack;
  EnrollGate enroll_gate = EnrollGate::kCriticalPath;
  Time enroll_timeout_slack = 1.0;       ///< added to the 2×radius RTT bound
  Time mapper_compute_time = 0.0;        ///< simulated mapping latency (§13)
  /// Multiplier on the 3×eccentricity protocol-overhead charge the mapper
  /// adds to the release. 1.0 is exact under the ideal transport; raise it
  /// under the contended transport to absorb queueing (see DESIGN.md).
  double protocol_overhead_factor = 1.0;
  /// Additive protocol-overhead slack. The eccentricity only covers
  /// propagation; under the contended transport each hop also pays
  /// serialization (size/bandwidth) and queueing, which this absorbs.
  Time protocol_overhead_slack = 0.0;
  double min_surplus = 0.02;             ///< sites below this get no logical proc
  /// Report surplus over [now, job deadline] instead of the fixed
  /// observation window (see EnrollRequest). Default on; E5 ablates.
  bool job_window_surplus = true;
  /// §13 "Local knowledge of k": the mapper schedules the initiator's own
  /// logical processor against its exact idle intervals instead of its
  /// surplus. Off by default (the paper's base algorithm); E5 ablates.
  bool initiator_local_knowledge = false;
  /// Set by RtdsSystem when a non-empty FaultPlan is installed. Arms the
  /// recovery machinery a lossy network needs — the enrollment timeout
  /// under *both* enrollment policies, a validation timeout, and the
  /// responder lock lease — and downgrades the protocol assertions a lost
  /// message can legitimately violate into graceful recoveries. Off (the
  /// default) leaves every code path bit-identical to the faultless
  /// protocol (pinned by tests/fault_test.cpp).
  bool fault_tolerant = false;
  /// Responder lock lease under fault_tolerant: a lock not resolved by
  /// dispatch/unlock within the lease self-releases, so a dead initiator
  /// cannot freeze its sphere forever. 0 = auto (derived from the sphere
  /// eccentricity and mapper latency at node construction).
  Time lock_lease = 0.0;
  /// §12 hardening: retransmit unanswered enroll/validate requests and
  /// un-acked dispatches with capped exponential backoff + seeded jitter.
  /// Only meaningful under fault_tolerant (inert otherwise — the paper's
  /// protocol has no retransmission, and without faults every message
  /// arrives). Off by default.
  bool retransmit = false;
  int retransmit_tries = 3;  ///< max retransmissions per unanswered message
  /// Seed of the backoff-jitter stream (RtdsSystem wires the fault plan's
  /// seed in, so the whole adversarial run is one seed).
  std::uint64_t fault_seed = 42;
  /// Overload control: max jobs the locked-site admission queue holds
  /// before shed_policy kicks in. 0 = unbounded — bit-identical to the
  /// pre-overload protocol (pinned by tests/load_test.cpp).
  std::size_t admission_queue_cap = 0;
  ShedPolicy shed_policy = ShedPolicy::kDropNewest;
};

/// Instrumentation interface the owning system implements. Calls are
/// out-of-band (measurement, not protocol).
class NodeEnv {
 public:
  virtual ~NodeEnv() = default;
  virtual void on_job_decision(const JobDecision& decision) = 0;
  /// A committed task finished executing at `end` on `site`.
  virtual void on_task_complete(JobId job, TaskId task, SiteId site,
                                Time end) = 0;
  /// Protocol messages attributable to a job (hop-weighted).
  virtual void on_job_messages(JobId job, std::uint64_t hops) = 0;
  /// A dispatched logical processor could not be committed because the
  /// dispatch arrived after the planned release (possible only when the
  /// transport's real latency exceeds the protocol over-estimate, i.e.
  /// under contention with an insufficient protocol_overhead_factor).
  virtual void on_dispatch_failure(JobId job, SiteId site) = 0;
  /// `site` crashed with committed-but-unfinished work of `job` in its
  /// plan; that work is lost (fault injection only — default no-op so
  /// instrumentation-only environments need not care).
  virtual void on_job_lost(JobId job, SiteId site) {
    (void)job;
    (void)site;
  }
  /// The §12 retransmit path resent a protocol message of `job` (default
  /// no-op; RtdsSystem counts it into RunMetrics::retransmits).
  virtual void on_retransmit(JobId job) { (void)job; }
  /// The run's invariant checker, or nullptr when checking is off. Nodes
  /// feed it the send-sequence and admission-queue accounting hooks.
  virtual fault::InvariantChecker* checker() { return nullptr; }
};

class RtdsNode {
 public:
  RtdsNode(SiteId site, Simulator& sim, Transport& transport, Pcs pcs,
           RtdsConfig cfg, NodeEnv& env);

  RtdsNode(const RtdsNode&) = delete;
  RtdsNode& operator=(const RtdsNode&) = delete;

  SiteId site() const { return site_; }
  const Pcs& pcs() const { return pcs_; }
  const LocalScheduler& scheduler() const { return sched_; }

  /// A sporadic job arrives on this site (§2). Starts the §4 pipeline, or
  /// queues the job if the site is currently locked / already initiating.
  void submit(std::shared_ptr<const Job> job);

  /// Transport entry point; wire this to SimNetwork::set_handler.
  void on_message(SiteId from, const MessageBody& payload);

  /// Fault injection (DESIGN.md §9): the site dies, losing all in-flight
  /// state — lock, queue, active initiations, outstanding endorsement and
  /// the whole scheduling plan. Queued/active jobs get a kSiteDown
  /// decision; committed-but-unfinished jobs are reported via
  /// NodeEnv::on_job_lost. Idempotent.
  void crash();
  /// The site comes back with an empty plan. Idempotent.
  void recover();
  bool alive() const { return alive_; }

  // --- invariant probes (tests / end-of-run checks) ---
  bool locked() const { return lock_.has_value(); }
  std::size_t queued_jobs() const { return queue_.size(); }
  std::size_t active_initiations() const { return active_.size(); }

 private:
  /// Initiator-side per-job state.
  struct Initiation {
    std::shared_ptr<const Job> job;
    enum class Phase { kEnrolling, kMapping, kValidating, kDone } phase =
        Phase::kEnrolling;
    std::size_t expected_replies = 0;
    std::size_t received_replies = 0;
    /// Sites whose enroll reply was already counted — fault mode only
    /// (retransmitted requests can produce duplicate replies, each with a
    /// fresh sequence, so the dedup window cannot catch them). Stays empty
    /// in fault-free runs.
    std::vector<SiteId> repliers;
    std::vector<SiteId> acs;                    ///< ackers + self
    /// Flat (site, value) lists, one entry per ACS member — sphere-sized,
    /// so linear lookups beat map nodes (these fill and drain once per
    /// protocol round).
    std::vector<std::pair<SiteId, double>> surplus_of;
    std::shared_ptr<const TrialMapping> mapping;
    Time acs_diameter = 0.0;
    std::vector<std::pair<SiteId, std::vector<std::uint32_t>>> endorsements;
    std::size_t validate_expected = 0;
    bool timed_out = false;
  };

  // --- initiator side ---
  void start_next_job();
  void begin(std::shared_ptr<const Job> job);
  void begin_acs_construction(Initiation& init);
  void on_enroll_reply(SiteId from, const EnrollReply& msg);
  void on_enroll_timeout(JobId job);
  void on_validate_timeout(JobId job);
  void run_mapper(JobId job);
  void begin_validation(Initiation& init);
  void on_validate_reply(SiteId from, const ValidateReply& msg);
  void finish_matching(Initiation& init);
  void reject(Initiation& init, RejectReason reason);
  void conclude(JobId job, const Initiation& init, JobOutcome outcome,
                RejectReason reason);

  // --- responder side ---
  void on_enroll_request(SiteId from, const EnrollRequest& msg);
  void on_validate_request(SiteId from, const ValidateRequest& msg);
  void on_dispatch(SiteId from, const DispatchMsg& msg);
  void on_unlock(SiteId from, const UnlockMsg& msg);
  void on_dispatch_ack(SiteId from, const DispatchAck& msg);

  // --- §12 hardening: ack + retransmit with capped exponential backoff ---
  bool retransmit_enabled() const {
    return cfg_.fault_tolerant && cfg_.retransmit;
  }
  /// Tracks `payload` (an unstamped template — send() stamps a fresh
  /// sequence per resend) for retransmission to `to` until cancelled;
  /// first retry fires after `rto`, then doubles with seeded jitter, up to
  /// cfg_.retransmit_tries resends.
  void arm_retry(JobId job, SiteId to, int category, MessageBody payload,
                 double size_units, Time rto);
  void on_retry_timer(JobId job, SiteId to, std::uint64_t gen, Time rto);
  /// The peer answered: stop retransmitting this (job, peer) message.
  void cancel_retry(JobId job, SiteId to);
  /// Round resolved: drop every non-dispatch retry of `job` (members that
  /// never answered enrollment must not be re-asked after conclude).
  void cancel_pre_dispatch_retries(JobId job);
  /// Ring of recently handled dispatch jobs — a retransmitted DispatchMsg
  /// whose original was already processed is re-acked, never re-committed
  /// (and never miscounted as a dispatch failure).
  bool recently_dispatched(JobId job) const;
  void remember_dispatch(JobId job);

  /// Computes the logical processors this site can endorse for a mapping.
  std::vector<std::uint32_t> endorsable_processors(const Job& job,
                                                   const TrialMapping& m) const;

  /// Local §5 test + commit + completion bookkeeping + decision record.
  /// Returns false (and leaves everything untouched) if the job does not
  /// fit or would invalidate an outstanding endorsement.
  bool try_local_accept(const std::shared_ptr<const Job>& job);

  /// Surplus to report for a job with the given absolute deadline
  /// (job-window or fixed observation window per config).
  double surplus_for(Time deadline) const;

  /// Commits logical processor `u`'s tasks into the local plan and arranges
  /// completion notifications.
  void commit_logical(const Job& job, const TrialMapping& m, std::uint32_t u);

  // --- locking ---
  struct Lock {
    SiteId initiator;
    JobId job;
  };
  void acquire_lock(SiteId initiator, JobId job);
  void release_lock(SiteId initiator, JobId job);
  void after_unlock();
  void on_lease_expired(std::uint64_t seq);

  /// True iff the current lock matches (initiator, job) — the fault-mode
  /// guard for validate/dispatch/unlock whose lock may have leased away.
  bool lock_matches(SiteId initiator, JobId job) const {
    return lock_.has_value() && lock_->initiator == initiator &&
           lock_->job == job;
  }

  /// Records the kSiteDown decision a job lost to this dead site still
  /// owes the accounting (dead-site arrivals and crash-cleared work).
  void record_site_down(const Job& job, std::size_t acs_size);

  /// Appends `job` to the admission queue, shedding per cfg_.shed_policy
  /// when the queue is at admission_queue_cap (no-op cap when 0).
  void enqueue_bounded(std::shared_ptr<const Job> job);
  /// Records the kShed decision of an overload-shed job.
  void record_shed(const Job& job);

  /// Schedules a completion notification that survives crashes correctly:
  /// stale (pre-crash) completions no-op via the epoch capture, and under
  /// fault_tolerant the per-job pending count feeds crash-time job-loss
  /// reporting.
  void schedule_completion(JobId job, TaskId task, Time end);
  /// Body of a scheduled completion event (also the snapshot replay entry).
  void fire_completion(JobId job, TaskId task, Time end, std::uint64_t epoch);
  /// Body of the deferred start_next_job kick scheduled by after_unlock.
  void fire_start_next();

  void send(SiteId to, MessageBody payload, int category, JobId job,
            double size_units = 1.0);

  SiteId site_;
  Simulator& sim_;
  Transport& transport_;
  Pcs pcs_;
  RtdsConfig cfg_;
  NodeEnv& env_;
  LocalScheduler sched_;

  /// Endorsements this site has promised and not yet seen resolved
  /// (responder: sent in a ValidateReply; initiator: recorded for itself at
  /// validation start). Local accepts must preserve their satisfiability.
  struct OutstandingEndorsement {
    JobId job = 0;
    std::shared_ptr<const Job> job_data;
    std::shared_ptr<const TrialMapping> mapping;
    std::vector<std::uint32_t> endorsed;
  };

  std::optional<Lock> lock_;
  std::optional<OutstandingEndorsement> endorsement_;
  // std::vector, not deque: a deque allocates two blocks just to be
  // constructed, once per site, and these queues are almost always empty.
  std::vector<std::shared_ptr<const Job>> queue_;
  std::map<JobId, Initiation> active_;
  /// kTimeout policy: enrollments buffered while locked, processed on unlock.
  std::vector<std::pair<SiteId, EnrollRequest>> buffered_enrolls_;
  bool start_pending_ = false;  ///< a start_next_job event is scheduled

  // --- fault state (inert without a fault plan) ---
  bool alive_ = true;
  /// Bumped on every crash; completion events capture it so reservations
  /// of a previous life never report completions.
  std::uint64_t epoch_ = 0;
  /// Bumped on every lock acquisition; lease-expiry events capture it so a
  /// stale lease can never release a newer lock.
  std::uint64_t lock_seq_ = 0;
  Time lease_ = 0.0;  ///< resolved responder lock lease (fault mode only)
  /// Pending completion notifications per committed job (fault mode only):
  /// the set of jobs a crash must report as lost.
  std::map<JobId, std::uint32_t> pending_completions_;

  // --- §12 hardening state ---
  // The dedup machinery is ALWAYS active (not gated on fault_tolerant):
  // send() stamps every protocol message with a per-peer sequence and
  // on_message() drops already-seen sequences. On a faultless network the
  // sequences are strictly increasing, so the window accepts everything and
  // the run stays bit-identical — pinned by tests/chaos_test.cpp.
  // Deliberately NOT reset by crash(): sequences must stay monotone per
  // (sender, receiver) across reincarnations or a recovered site's fresh
  // messages would look like replays to its peers.
  FlatMap<SiteId, std::uint64_t> send_seq_;
  FlatMap<SiteId, fault::DedupWindow> recv_window_;

  /// One in-flight retransmittable message per (job, peer): the protocol
  /// phases are sequential, so arming validate (or dispatch) for a peer
  /// supersedes its enroll (or validate) entry. std::map is fine — the
  /// path only exists in fault mode.
  struct Retry {
    MessageBody payload;  ///< unstamped template, re-stamped per resend
    int category = 0;
    double size_units = 1.0;
    int attempts = 0;
    std::uint64_t gen = 0;  ///< arm generation; stale timers no-op
  };
  std::map<std::pair<JobId, SiteId>, Retry> retries_;
  std::uint64_t retry_gen_ = 0;
  Rng retry_rng_;  ///< backoff jitter (seeded from cfg_.fault_seed + site)
  std::array<JobId, 64> recent_dispatch_{};
  std::size_t recent_dispatch_count_ = 0;

  /// Checkpoint serialization reads and restores the private state above
  /// (snap/snapshot.cpp); nothing else reaches in.
  friend struct snap::Access;
};

}  // namespace rtds
