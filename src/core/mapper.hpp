// The Mapper (§9, §12): builds a Trial-Mapping from a DAG, the ACS surpluses
// and the ACS communication diameter.
//
// Instance implemented is the paper's §12 proposal:
//  * task selection: list scheduling by critical-path priority (bottom
//    level, node weights only, task included);
//  * processor selection: greedy earliest finishing time;
//  * communication between tasks on different logical processors is
//    over-estimated by the computed delay diameter ω of the current ACS;
//  * execution time of t on logical processor p = c(t) / I_p (surplus-
//    degraded rate), eq. (1)-(2);
//  * releases/deadlines then adjusted to the job window per §12.2
//    (cases i/ii/iii, eqs. (3)-(5)).
//
// §13 extensions implemented as options: busyness-weighted laxity
// dispatching, data-volume-aware communication delays, and (via the caller
// scaling surpluses) uniform machines.
#pragma once

#include <optional>

#include "core/trial_mapping.hpp"

namespace rtds {

/// Task-selection rule for the list scheduler. §9: "Almost any heuristic
/// can be adapted to our purpose" — the paper's §12 instance uses critical
/// path priority; the others are standard alternatives kept for ablation.
enum class TaskPriority {
  kBottomLevel,  ///< longest node-weighted path to a sink (§12, default)
  kCost,         ///< largest computational complexity first
  kFifo,         ///< arbitrary fixed order (task id) among free tasks
};

const char* to_string(TaskPriority priority);

struct MapperConfig {
  /// Which free task the list scheduler picks next.
  TaskPriority task_priority = TaskPriority::kBottomLevel;

  /// §13 "Laxity Dispatching": scatter the case-iii extra laxity over
  /// critical-path tasks proportionally to the busyness (1 - I) of their
  /// logical processor instead of uniformly.
  bool busyness_weighted_laxity = false;

  /// §13 "Communication Delays": add data_volume / throughput to ω for arcs
  /// that carry data. Requires throughput > 0 when enabled.
  bool account_data_volumes = false;
  double link_throughput = 0.0;

  /// Defensive rejection (documented deviation): if an adjusted window
  /// cannot hold its task even at full speed (possible under the paper's
  /// case-iii formula for DAGs whose longest *task-count* path is not a
  /// critical path), reject instead of emitting an infeasible mapping.
  bool reject_infeasible_windows = true;
};

struct MapperInput {
  const Dag* dag = nullptr;
  Time release = 0.0;    ///< job release r (already advanced by protocol overhead)
  Time deadline = 0.0;   ///< job deadline d
  /// Surpluses of the candidate sites, sorted descending (§9); one logical
  /// processor per entry. All must be in (0, 1].
  std::vector<double> surpluses;
  /// Computed delay diameter ω of the current ACS (§12).
  Time comm_diameter = 0.0;

  /// §13 "Local knowledge of k": when set, the logical processor at
  /// `initiator_index` (an index into `surpluses`) is the initiator itself
  /// and the mapper schedules its tasks into the *exact* idle intervals of
  /// this plan at full local speed (`initiator_power`), instead of using
  /// the surplus-degraded rate estimate. The plan is not modified.
  const SchedulingPlan* initiator_plan = nullptr;
  std::size_t initiator_index = 0;
  double initiator_power = 1.0;
};

/// Runs the mapper. Returns std::nullopt when the DAG is rejected (case i,
/// or defensive window rejection). The returned mapping uses logical
/// processors 0..used_processors-1 with surpluses in descending order.
///
/// On rejection, `failure_case` (if given) is set to kReject for a case-i
/// rejection, or to the case (ii/iii) whose windows failed the defensive
/// feasibility sweep.
std::optional<TrialMapping> build_trial_mapping(
    const MapperInput& input, const MapperConfig& cfg = {},
    AdjustmentCase* failure_case = nullptr);

}  // namespace rtds
